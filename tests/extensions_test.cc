// Tests for the extension modules: convex hull, instance lower bounds,
// AAM strategy ablations (LGF-only / LRF-only), arrangement statistics, and
// the Theorem-4 adversarial construction.

#include <gtest/gtest.h>

#include <memory>

#include "algo/aam.h"
#include "algo/lower_bound.h"
#include "algo/registry.h"
#include "gen/example_paper.h"
#include "gen/foursquare.h"
#include "gen/synthetic.h"
#include "geo/convex_hull.h"
#include "model/eligibility.h"
#include "sim/arrangement_stats.h"
#include "sim/engine.h"

namespace ltc {
namespace {

// ---- Convex hull ----

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  std::vector<geo::Point> points = {{0, 0}, {10, 0}, {10, 10}, {0, 10},
                                    {5, 5}, {2, 7},  {9, 1}};
  const auto hull = geo::ConvexHull(points);
  ASSERT_EQ(hull.size(), 4u);
  EXPECT_TRUE(geo::HullContains(hull, {5, 5}));
  EXPECT_TRUE(geo::HullContains(hull, {0, 0}));    // vertex
  EXPECT_TRUE(geo::HullContains(hull, {5, 0}));    // edge
  EXPECT_FALSE(geo::HullContains(hull, {11, 5}));
  EXPECT_FALSE(geo::HullContains(hull, {-0.1, 0}));
}

TEST(ConvexHullTest, CollinearAndDegenerate) {
  EXPECT_TRUE(geo::ConvexHull({}).empty());
  EXPECT_EQ(geo::ConvexHull({{1, 1}}).size(), 1u);
  EXPECT_EQ(geo::ConvexHull({{1, 1}, {1, 1}}).size(), 1u);
  EXPECT_EQ(geo::ConvexHull({{0, 0}, {5, 5}}).size(), 2u);
  // All collinear: hull keeps the two extremes.
  const auto hull = geo::ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(hull.size(), 2u);
  EXPECT_TRUE(geo::HullContains(hull, {2, 2}));
  EXPECT_FALSE(geo::HullContains(hull, {2, 3}));
}

TEST(ConvexHullTest, CrossSign) {
  EXPECT_GT(geo::Cross({0, 0}, {1, 0}, {1, 1}), 0.0);  // left turn
  EXPECT_LT(geo::Cross({0, 0}, {1, 0}, {1, -1}), 0.0);  // right turn
  EXPECT_EQ(geo::Cross({0, 0}, {1, 1}, {2, 2}), 0.0);   // collinear
}

TEST(ConvexHullTest, FoursquareTasksLieInWorkerHull) {
  gen::FoursquareConfig cfg;
  cfg.city = gen::NewYorkPreset();
  cfg.scale = 0.01;
  auto instance = gen::GenerateFoursquareLike(cfg);
  ASSERT_TRUE(instance.ok());
  std::vector<geo::Point> worker_points;
  for (const auto& w : instance->workers) worker_points.push_back(w.location);
  const auto hull = geo::ConvexHull(std::move(worker_points));
  ASSERT_GE(hull.size(), 3u);
  // The generator anchors tasks at check-ins, so virtually all tasks must
  // fall inside the workers' convex region (the paper's construction).
  std::int64_t inside = 0;
  for (const auto& t : instance->tasks) {
    if (geo::HullContains(hull, t.location)) ++inside;
  }
  EXPECT_GE(inside, instance->num_tasks() * 95 / 100);
}

// ---- Instance lower bounds ----

struct Built {
  model::ProblemInstance instance;
  std::unique_ptr<model::EligibilityIndex> index;
};

Built BuildSynthetic(std::uint64_t seed) {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 20;
  cfg.num_workers = 2500;
  cfg.grid_side = 150.0;
  cfg.seed = seed;
  auto instance = gen::GenerateSynthetic(cfg);
  instance.status().CheckOK();
  Built b{std::move(instance).value(), nullptr};
  auto index = model::EligibilityIndex::Build(&b.instance);
  index.status().CheckOK();
  b.index =
      std::make_unique<model::EligibilityIndex>(std::move(index).value());
  return b;
}

TEST(LowerBoundTest, BoundsEveryAlgorithm) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Built b = BuildSynthetic(seed);
    auto bound = algo::ComputeLowerBound(b.instance, *b.index);
    ASSERT_TRUE(bound.ok());
    ASSERT_TRUE(bound->feasible);
    EXPECT_GT(bound->supply_bound, 0);
    EXPECT_GT(bound->work_bound, 0);
    EXPECT_GE(bound->binding_task, 0);
    EXPECT_EQ(bound->combined,
              std::max(bound->supply_bound, bound->work_bound));
    for (const auto& name : algo::StandardAlgorithms()) {
      auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
      ASSERT_TRUE(metrics.ok()) << name;
      if (metrics->completed) {
        EXPECT_GE(metrics->latency, bound->combined)
            << name << " beat the lower bound (seed " << seed << ")";
      }
    }
  }
}

TEST(LowerBoundTest, DetectsInfeasibleTask) {
  // One task, workers too weak/few to reach delta.
  model::ProblemInstance instance;
  instance.epsilon = 0.05;  // delta ~= 6
  instance.capacity = 2;
  instance.acc_min = 0.5;
  auto acc = model::MatrixAccuracy::Create({{0.9}, {0.9}});
  ASSERT_TRUE(acc.ok());
  instance.accuracy = acc.value();
  instance.tasks.push_back(model::Task{0, {0, 0}});
  for (model::WorkerIndex w = 1; w <= 2; ++w) {
    model::Worker worker;
    worker.index = w;
    worker.historical_accuracy = 0.9;
    instance.workers.push_back(worker);
  }
  auto index = model::EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());
  auto bound = algo::ComputeLowerBound(instance, *index);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->feasible);
}

TEST(LowerBoundTest, SupplyBoundTightOnSerialInstance) {
  // Single task; every second worker eligible with Acc* ~0.85 and
  // delta = 3.22 -> needs 4 eligible workers -> the 4th eligible arrival.
  model::ProblemInstance instance;
  instance.epsilon = 0.2;
  instance.capacity = 1;
  instance.acc_min = 0.5;
  std::vector<std::vector<double>> matrix;
  for (int i = 0; i < 10; ++i) {
    matrix.push_back({i % 2 == 0 ? 0.96 : 0.0});
  }
  auto acc = model::MatrixAccuracy::Create(matrix);
  ASSERT_TRUE(acc.ok());
  instance.accuracy = acc.value();
  instance.tasks.push_back(model::Task{0, {0, 0}});
  for (model::WorkerIndex w = 1; w <= 10; ++w) {
    model::Worker worker;
    worker.index = w;
    worker.historical_accuracy = 0.96;
    instance.workers.push_back(worker);
  }
  auto index = model::EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());
  auto bound = algo::ComputeLowerBound(instance, *index);
  ASSERT_TRUE(bound.ok());
  // Eligible workers are 1, 3, 5, 7, ...; the 4th is worker 7.
  EXPECT_EQ(bound->supply_bound, 7);
  EXPECT_TRUE(bound->feasible);
  // And LAF indeed completes exactly at the bound (it takes every eligible
  // arrival for the single task).
  auto metrics = sim::RunAlgorithm("LAF", instance, *index);
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(metrics->completed);
  EXPECT_EQ(metrics->latency, 7);
}

// ---- AAM strategy ablation ----

TEST(AamAblationTest, ForcedStrategiesRunAndAamIsNoWorse) {
  Built b = BuildSynthetic(11);
  auto aam = sim::RunAlgorithm("AAM", b.instance, *b.index);
  auto lgf = sim::RunAlgorithm("LGF-only", b.instance, *b.index);
  auto lrf = sim::RunAlgorithm("LRF-only", b.instance, *b.index);
  ASSERT_TRUE(aam.ok());
  ASSERT_TRUE(lgf.ok());
  ASSERT_TRUE(lrf.ok());
  EXPECT_TRUE(aam->completed);
  EXPECT_TRUE(lgf->completed);
  EXPECT_TRUE(lrf->completed);
  // The hybrid should not lose to both pure strategies at once.
  EXPECT_LE(aam->latency, std::max(lgf->latency, lrf->latency));
}

TEST(AamAblationTest, ForcedStrategyIsPinned) {
  auto instance = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance.ok());
  auto index = model::EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());
  algo::AamOptions lrf_options;
  lrf_options.force = algo::AamOptions::Force::kLrfOnly;
  algo::Aam lrf(lrf_options);
  EXPECT_EQ(lrf.Name(), "LRF-only");
  lrf.Init(*instance, *index).CheckOK();
  std::vector<model::TaskId> assigned;
  lrf.OnArrival(instance->workers[0], &assigned).CheckOK();
  EXPECT_EQ(lrf.last_strategy(), algo::Aam::Strategy::kLrf);
  // LRF on w1 picks the two most-demanding tasks: all tie at delta, so the
  // lowest ids win.
  EXPECT_EQ(assigned, (std::vector<model::TaskId>{0, 1}));
}

// ---- Arrangement statistics ----

TEST(ArrangementStatsTest, PerTaskCompletionIndices) {
  auto instance = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance.ok());
  auto index = model::EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());
  auto scheduler = algo::MakeOnlineScheduler("LAF", 1);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(*instance, *index).CheckOK();
  std::vector<model::TaskId> assigned;
  for (const auto& w : instance->workers) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(w, &assigned).CheckOK();
  }
  auto stats =
      sim::ComputeArrangementStats(*instance, (*scheduler)->arrangement());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed_tasks, 3);
  EXPECT_EQ(stats->total_tasks, 3);
  // From the paper's Example 3 trace: t1 completes at w4, t2 at w4, t3 at w8.
  std::vector<std::int64_t> sorted = stats->completion_index;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::int64_t>{4, 4, 8}));
  EXPECT_EQ(stats->max, 8);
  EXPECT_EQ(stats->median, 4);
  EXPECT_NEAR(stats->mean, (4 + 4 + 8) / 3.0, 1e-9);
  EXPECT_EQ(stats->wasted_assignments, 0);
}

TEST(ArrangementStatsTest, CountsWasteForNaiveRandom) {
  Built b = BuildSynthetic(21);
  auto scheduler = algo::MakeOnlineScheduler("Random", 5);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(b.instance, *b.index).CheckOK();
  std::vector<model::TaskId> assigned;
  for (const auto& w : b.instance.workers) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(w, &assigned).CheckOK();
  }
  auto stats =
      sim::ComputeArrangementStats(b.instance, (*scheduler)->arrangement());
  ASSERT_TRUE(stats.ok());
  // The naive baseline answers completed tasks; some waste must show up.
  EXPECT_GT(stats->wasted_assignments, 0);
  // LAF, by contrast, never wastes.
  auto laf = algo::MakeOnlineScheduler("LAF", 5);
  ASSERT_TRUE(laf.ok());
  (*laf)->Init(b.instance, *b.index).CheckOK();
  for (const auto& w : b.instance.workers) {
    if ((*laf)->Done()) break;
    (*laf)->OnArrival(w, &assigned).CheckOK();
  }
  auto laf_stats =
      sim::ComputeArrangementStats(b.instance, (*laf)->arrangement());
  ASSERT_TRUE(laf_stats.ok());
  EXPECT_EQ(laf_stats->wasted_assignments, 0);
}

TEST(ArrangementStatsTest, EmptyArrangement) {
  auto instance = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance.ok());
  model::Arrangement empty(3, instance->Delta());
  auto stats = sim::ComputeArrangementStats(*instance, empty);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed_tasks, 0);
  EXPECT_EQ(stats->max, 0);
}

// ---- Theorem 4 adversarial construction ----

TEST(AdversarialTest, GreedyTiesCanBePunished) {
  // Paper Theorem 4's adversarial family: worker 1 is equally good at both
  // tasks; whichever it picks, the adversary sends followers that are good
  // at the picked task and bad at the other. The optimum is 2 workers; any
  // deterministic greedy needs many more.
  //
  // delta = 2 ln(1/epsilon); choose epsilon so one strong answer completes
  // a task (delta < 0.92) but weak answers contribute ~0.1.
  const double epsilon = 0.65;  // delta ~= 0.86
  model::ProblemInstance instance;
  instance.epsilon = epsilon;
  instance.capacity = 1;
  instance.acc_min = 0.0;
  // Acc 0.98 -> Acc* = 0.92 (strong); Acc 0.66 -> Acc* = 0.1 (weak).
  std::vector<std::vector<double>> matrix = {
      {0.98, 0.98},  // w1: tie — LAF picks t1 (lower id)
      // Adversary: everyone after is strong at t1 (already served), weak at
      // t2 — nine weak answers needed to finish t2.
      {0.98, 0.66}, {0.98, 0.66}, {0.98, 0.66}, {0.98, 0.66}, {0.98, 0.66},
      {0.98, 0.66}, {0.98, 0.66}, {0.98, 0.66}, {0.98, 0.66}, {0.98, 0.66},
  };
  auto acc = model::MatrixAccuracy::Create(matrix);
  ASSERT_TRUE(acc.ok());
  instance.accuracy = acc.value();
  for (model::TaskId t = 0; t < 2; ++t) {
    instance.tasks.push_back(model::Task{t, {0, 0}});
  }
  for (model::WorkerIndex w = 1; w <= 11; ++w) {
    model::Worker worker;
    worker.index = w;
    worker.historical_accuracy = 0.98;
    instance.workers.push_back(worker);
  }
  ASSERT_TRUE(instance.Validate().ok());
  auto index = model::EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());

  // The optimum: w1 -> t2 (strong), w2 -> t1 (strong): latency 2.
  auto optimal = algo::MakeOfflineScheduler("Exhaustive");
  ASSERT_TRUE(optimal.ok());
  auto opt = (*optimal)->Run(instance, *index);
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(opt->completed);
  EXPECT_EQ(opt->latency, 2);

  // LAF walks into the trap: w1 takes t1, then t2 needs ceil(0.86/0.1) = 9
  // weak answers -> latency 10.
  auto laf = sim::RunAlgorithm("LAF", instance, *index);
  ASSERT_TRUE(laf.ok());
  EXPECT_TRUE(laf->completed);
  EXPECT_GE(laf->latency, 10);
  // The competitive gap matches Theorem 4's flavour (>= 5x here).
  EXPECT_GE(laf->latency, 5 * opt->latency);
}

}  // namespace
}  // namespace ltc
