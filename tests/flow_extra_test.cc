// Additional flow-solver coverage: structural edge cases, demand-shaped
// networks like those MCF-LTC builds, and larger randomized cross-checks.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "flow/graph.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"

namespace ltc {
namespace flow {
namespace {

TEST(SspMcmfTest, LongChainManyAugmentations) {
  // st -> c1 -> c2 -> ... -> c50 -> ed with capacity 10 each: one path,
  // 10 units in a single augmentation thanks to bottleneck pushes.
  constexpr int kChain = 50;
  FlowNetworkBuilder b(kChain + 2);
  ASSERT_TRUE(b.AddArc(0, 2, 10, 1).ok());
  for (int i = 0; i < kChain - 1; ++i) {
    ASSERT_TRUE(b.AddArc(2 + i, 3 + i, 10, 1).ok());
  }
  ASSERT_TRUE(b.AddArc(kChain + 1, 1, 10, 1).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 10);
  EXPECT_EQ(r->cost, 10 * (kChain + 1));
  EXPECT_EQ(r->iterations, 1);  // bottleneck augmentation, not unit pushes
}

TEST(SspMcmfTest, ParallelArcsPickCheaperFirst) {
  FlowNetworkBuilder b(2);
  ASSERT_TRUE(b.AddArc(0, 1, 1, 5).ok());
  ASSERT_TRUE(b.AddArc(0, 1, 1, 2).ok());
  ASSERT_TRUE(b.AddArc(0, 1, 1, 9).ok());
  FlowNetwork net;
  b.Build(&net);
  McmfOptions options;
  options.flow_limit = 2;
  auto r = SspMinCostMaxFlow(&net, 0, 1, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 2);
  EXPECT_EQ(r->cost, 7);  // 2 + 5
}

TEST(SspMcmfTest, ZeroCapacityArcIgnored) {
  FlowNetworkBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1, 0, -100).ok());  // attractive but unusable
  ASSERT_TRUE(b.AddArc(0, 2, 1, 1).ok());
  ASSERT_TRUE(b.AddArc(2, 1, 1, 1).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 1);
  EXPECT_EQ(r->cost, 2);
}

TEST(SspMcmfTest, ResidualReroutingRequired) {
  // Classic rerouting: the cheap first path must be partially undone to
  // reach the true optimum for 2 units.
  //   st -> a (cap 1, 0), st -> b (cap 1, 0)
  //   a -> t1 (cap 1, 1), a -> t2 (cap 1, 10)
  //   b -> t1 (cap 1, 2)      [b cannot reach t2]
  //   t1 -> ed (cap 1, 0), t2 -> ed (cap 1, 0)
  // Greedy sends a->t1; the second unit (b) only reaches t1 — SSPA must
  // reroute a to t2 through the residual arc.
  FlowNetworkBuilder b(6);
  ASSERT_TRUE(b.AddArc(0, 2, 1, 0).ok());   // st->a
  ASSERT_TRUE(b.AddArc(0, 3, 1, 0).ok());   // st->b
  ASSERT_TRUE(b.AddArc(2, 4, 1, 1).ok());   // a->t1
  ASSERT_TRUE(b.AddArc(2, 5, 1, 10).ok());  // a->t2
  ASSERT_TRUE(b.AddArc(3, 4, 1, 2).ok());   // b->t1
  ASSERT_TRUE(b.AddArc(4, 1, 1, 0).ok());   // t1->ed
  ASSERT_TRUE(b.AddArc(5, 1, 1, 0).ok());   // t2->ed
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 2);
  EXPECT_EQ(r->cost, 12);  // b->t1 (2) + a->t2 (10)
}

TEST(SspMcmfTest, DemandShapedNetworkSaturatesDemands) {
  // MCF-LTC shape: 3 workers (cap 2), 2 tasks with demands {2, 3}; only 4
  // of 5 demand units are coverable (task arcs limited).
  FlowNetworkBuilder b(7);  // 0 st, 1 ed, 2-4 workers, 5-6 tasks
  for (int w = 2; w <= 4; ++w) {
    ASSERT_TRUE(b.AddArc(0, w, 2, 0).ok());
  }
  // worker 2 -> both tasks, worker 3 -> task 5 only, worker 4 -> task 6 only.
  ASSERT_TRUE(b.AddArc(2, 5, 1, -900).ok());
  ASSERT_TRUE(b.AddArc(2, 6, 1, -800).ok());
  ASSERT_TRUE(b.AddArc(3, 5, 1, -700).ok());
  ASSERT_TRUE(b.AddArc(4, 6, 1, -600).ok());
  ASSERT_TRUE(b.AddArc(5, 1, 2, 0).ok());
  ASSERT_TRUE(b.AddArc(6, 1, 3, 0).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 4);
  EXPECT_EQ(r->cost, -3000);
}

TEST(BellmanFordMcmfTest, NegativeCycleRejected) {
  FlowNetworkBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1, 1, -5).ok());
  ASSERT_TRUE(b.AddArc(1, 2, 1, -5).ok());
  ASSERT_TRUE(b.AddArc(2, 0, 1, -5).ok());
  const auto node = b.AddNode();
  ASSERT_TRUE(b.AddArc(0, node, 1, 0).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = BellmanFordMinCostMaxFlow(&net, 0, node);
  // The source-side negative cycle is reachable; the solver must refuse
  // rather than loop forever.
  EXPECT_FALSE(r.ok());
}

TEST(DinicTest, UnitBipartiteMatching) {
  // 4x4 bipartite perfect matching via unit capacities.
  FlowNetworkBuilder b(10);  // 0 st, 1 ed, 2-5 left, 6-9 right
  for (int l = 0; l < 4; ++l) {
    ASSERT_TRUE(b.AddArc(0, 2 + l, 1, 0).ok());
    ASSERT_TRUE(b.AddArc(6 + l, 1, 1, 0).ok());
  }
  // Ring adjacency: left i -> right i and right (i+1)%4.
  for (int l = 0; l < 4; ++l) {
    ASSERT_TRUE(b.AddArc(2 + l, 6 + l, 1, 0).ok());
    ASSERT_TRUE(b.AddArc(2 + l, 6 + (l + 1) % 4, 1, 0).ok());
  }
  FlowNetwork net;
  b.Build(&net);
  auto r = DinicMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4);
}

class BigRandomMcmfTest : public ::testing::TestWithParam<int> {};

TEST_P(BigRandomMcmfTest, SspMatchesBellmanFordOnLargerGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const int workers = 20;
  const int tasks = 12;
  const std::uint64_t seed = rng.NextU64();
  auto build = [&](std::uint64_t s) {
    Rng r(s);
    FlowNetworkBuilder b(2 + workers + tasks);
    for (int w = 0; w < workers; ++w) {
      EXPECT_TRUE(b.AddArc(0, 2 + w, r.UniformInt(1, 4), 0).ok());
      for (int t = 0; t < tasks; ++t) {
        if (r.Bernoulli(0.4)) {
          EXPECT_TRUE(b.AddArc(2 + w, 2 + workers + t, 1,
                               -r.UniformInt(1, 100000))
                          .ok());
        }
      }
    }
    for (int t = 0; t < tasks; ++t) {
      EXPECT_TRUE(
          b.AddArc(2 + workers + t, 1, r.UniformInt(1, 6), 0).ok());
    }
    FlowNetwork net;
    b.Build(&net);
    return net;
  };
  FlowNetwork a = build(seed);
  FlowNetwork b = build(seed);
  auto ra = SspMinCostMaxFlow(&a, 0, 1);
  auto rb = BellmanFordMinCostMaxFlow(&b, 0, 1);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->flow, rb->flow);
  EXPECT_EQ(ra->cost, rb->cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigRandomMcmfTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace flow
}  // namespace ltc
