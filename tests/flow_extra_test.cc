// Additional flow-solver coverage: structural edge cases, demand-shaped
// networks like those MCF-LTC builds, and larger randomized cross-checks.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "flow/graph.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"

namespace ltc {
namespace flow {
namespace {

TEST(SspMcmfTest, LongChainManyAugmentations) {
  // st -> c1 -> c2 -> ... -> c50 -> ed with capacity 10 each: one path,
  // 10 units in a single augmentation thanks to bottleneck pushes.
  constexpr int kChain = 50;
  FlowNetworkBuilder b(kChain + 2);
  ASSERT_TRUE(b.AddArc(0, 2, 10, 1).ok());
  for (int i = 0; i < kChain - 1; ++i) {
    ASSERT_TRUE(b.AddArc(2 + i, 3 + i, 10, 1).ok());
  }
  ASSERT_TRUE(b.AddArc(kChain + 1, 1, 10, 1).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 10);
  EXPECT_EQ(r->cost, 10 * (kChain + 1));
  EXPECT_EQ(r->iterations, 1);  // bottleneck augmentation, not unit pushes
}

TEST(SspMcmfTest, ParallelArcsPickCheaperFirst) {
  FlowNetworkBuilder b(2);
  ASSERT_TRUE(b.AddArc(0, 1, 1, 5).ok());
  ASSERT_TRUE(b.AddArc(0, 1, 1, 2).ok());
  ASSERT_TRUE(b.AddArc(0, 1, 1, 9).ok());
  FlowNetwork net;
  b.Build(&net);
  McmfOptions options;
  options.flow_limit = 2;
  auto r = SspMinCostMaxFlow(&net, 0, 1, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 2);
  EXPECT_EQ(r->cost, 7);  // 2 + 5
}

TEST(SspMcmfTest, ZeroCapacityArcIgnored) {
  FlowNetworkBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1, 0, -100).ok());  // attractive but unusable
  ASSERT_TRUE(b.AddArc(0, 2, 1, 1).ok());
  ASSERT_TRUE(b.AddArc(2, 1, 1, 1).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 1);
  EXPECT_EQ(r->cost, 2);
}

TEST(SspMcmfTest, ResidualReroutingRequired) {
  // Classic rerouting: the cheap first path must be partially undone to
  // reach the true optimum for 2 units.
  //   st -> a (cap 1, 0), st -> b (cap 1, 0)
  //   a -> t1 (cap 1, 1), a -> t2 (cap 1, 10)
  //   b -> t1 (cap 1, 2)      [b cannot reach t2]
  //   t1 -> ed (cap 1, 0), t2 -> ed (cap 1, 0)
  // Greedy sends a->t1; the second unit (b) only reaches t1 — SSPA must
  // reroute a to t2 through the residual arc.
  FlowNetworkBuilder b(6);
  ASSERT_TRUE(b.AddArc(0, 2, 1, 0).ok());   // st->a
  ASSERT_TRUE(b.AddArc(0, 3, 1, 0).ok());   // st->b
  ASSERT_TRUE(b.AddArc(2, 4, 1, 1).ok());   // a->t1
  ASSERT_TRUE(b.AddArc(2, 5, 1, 10).ok());  // a->t2
  ASSERT_TRUE(b.AddArc(3, 4, 1, 2).ok());   // b->t1
  ASSERT_TRUE(b.AddArc(4, 1, 1, 0).ok());   // t1->ed
  ASSERT_TRUE(b.AddArc(5, 1, 1, 0).ok());   // t2->ed
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 2);
  EXPECT_EQ(r->cost, 12);  // b->t1 (2) + a->t2 (10)
}

TEST(SspMcmfTest, DemandShapedNetworkSaturatesDemands) {
  // MCF-LTC shape: 3 workers (cap 2), 2 tasks with demands {2, 3}; only 4
  // of 5 demand units are coverable (task arcs limited).
  FlowNetworkBuilder b(7);  // 0 st, 1 ed, 2-4 workers, 5-6 tasks
  for (int w = 2; w <= 4; ++w) {
    ASSERT_TRUE(b.AddArc(0, w, 2, 0).ok());
  }
  // worker 2 -> both tasks, worker 3 -> task 5 only, worker 4 -> task 6 only.
  ASSERT_TRUE(b.AddArc(2, 5, 1, -900).ok());
  ASSERT_TRUE(b.AddArc(2, 6, 1, -800).ok());
  ASSERT_TRUE(b.AddArc(3, 5, 1, -700).ok());
  ASSERT_TRUE(b.AddArc(4, 6, 1, -600).ok());
  ASSERT_TRUE(b.AddArc(5, 1, 2, 0).ok());
  ASSERT_TRUE(b.AddArc(6, 1, 3, 0).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flow, 4);
  EXPECT_EQ(r->cost, -3000);
}

TEST(BellmanFordMcmfTest, NegativeCycleRejected) {
  FlowNetworkBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1, 1, -5).ok());
  ASSERT_TRUE(b.AddArc(1, 2, 1, -5).ok());
  ASSERT_TRUE(b.AddArc(2, 0, 1, -5).ok());
  const auto node = b.AddNode();
  ASSERT_TRUE(b.AddArc(0, node, 1, 0).ok());
  FlowNetwork net;
  b.Build(&net);
  auto r = BellmanFordMinCostMaxFlow(&net, 0, node);
  // The source-side negative cycle is reachable; the solver must refuse
  // rather than loop forever.
  EXPECT_FALSE(r.ok());
}

TEST(DinicTest, UnitBipartiteMatching) {
  // 4x4 bipartite perfect matching via unit capacities.
  FlowNetworkBuilder b(10);  // 0 st, 1 ed, 2-5 left, 6-9 right
  for (int l = 0; l < 4; ++l) {
    ASSERT_TRUE(b.AddArc(0, 2 + l, 1, 0).ok());
    ASSERT_TRUE(b.AddArc(6 + l, 1, 1, 0).ok());
  }
  // Ring adjacency: left i -> right i and right (i+1)%4.
  for (int l = 0; l < 4; ++l) {
    ASSERT_TRUE(b.AddArc(2 + l, 6 + l, 1, 0).ok());
    ASSERT_TRUE(b.AddArc(2 + l, 6 + (l + 1) % 4, 1, 0).ok());
  }
  FlowNetwork net;
  b.Build(&net);
  auto r = DinicMaxFlow(&net, 0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4);
}

class BigRandomMcmfTest : public ::testing::TestWithParam<int> {};

TEST_P(BigRandomMcmfTest, SspMatchesBellmanFordOnLargerGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const int workers = 20;
  const int tasks = 12;
  const std::uint64_t seed = rng.NextU64();
  auto build = [&](std::uint64_t s) {
    Rng r(s);
    FlowNetworkBuilder b(2 + workers + tasks);
    for (int w = 0; w < workers; ++w) {
      EXPECT_TRUE(b.AddArc(0, 2 + w, r.UniformInt(1, 4), 0).ok());
      for (int t = 0; t < tasks; ++t) {
        if (r.Bernoulli(0.4)) {
          EXPECT_TRUE(b.AddArc(2 + w, 2 + workers + t, 1,
                               -r.UniformInt(1, 100000))
                          .ok());
        }
      }
    }
    for (int t = 0; t < tasks; ++t) {
      EXPECT_TRUE(
          b.AddArc(2 + workers + t, 1, r.UniformInt(1, 6), 0).ok());
    }
    FlowNetwork net;
    b.Build(&net);
    return net;
  };
  FlowNetwork a = build(seed);
  FlowNetwork b = build(seed);
  auto ra = SspMinCostMaxFlow(&a, 0, 1);
  auto rb = BellmanFordMinCostMaxFlow(&b, 0, 1);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->flow, rb->flow);
  EXPECT_EQ(ra->cost, rb->cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigRandomMcmfTest, ::testing::Range(0, 10));

TEST(FlowBuilderTest, ReuseAfterResetMatchesFreshBuilder) {
  // Regression: Reset() used to leave the previous network's capacities and
  // costs alive in vector capacity; a rebuild with fewer arcs could read
  // them back through stale ArcIds. A recycled builder must now behave
  // byte-for-byte like a never-used one.
  FlowNetworkBuilder reused(6);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(reused.AddArc(0, 5, 1000 + i, -777 - i).ok());
  }
  FlowNetwork scratch;
  reused.Build(&scratch);

  reused.Reset(4);
  FlowNetworkBuilder fresh(4);
  for (FlowNetworkBuilder* b : {&reused, &fresh}) {
    ASSERT_TRUE(b->AddArc(0, 2, 3, 5).ok());
    ASSERT_TRUE(b->AddArc(2, 1, 2, 7).ok());
  }
  EXPECT_EQ(reused.num_arcs(), fresh.num_arcs());
  for (ArcId a = 0; a < fresh.num_arcs(); ++a) {
    EXPECT_EQ(reused.arc_from(a), fresh.arc_from(a));
    EXPECT_EQ(reused.arc_to(a), fresh.arc_to(a));
    EXPECT_EQ(reused.arc_capacity(a), fresh.arc_capacity(a));
    EXPECT_EQ(reused.arc_cost(a), fresh.arc_cost(a));
  }
  FlowNetwork from_reused;
  FlowNetwork from_fresh;
  reused.Build(&from_reused);
  fresh.Build(&from_fresh);
  auto rr = SspMinCostMaxFlow(&from_reused, 0, 1);
  auto rf = SspMinCostMaxFlow(&from_fresh, 0, 1);
  ASSERT_TRUE(rr.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rr->flow, rf->flow);
  EXPECT_EQ(rr->cost, rf->cost);
  EXPECT_EQ(rr->flow, 2);
  EXPECT_EQ(rr->cost, 24);
}

TEST(FlowBuilderTest, ApplyDeltaMatchesFreshBuild) {
  // Patch a built network in place (drop two arcs, add two, after cancelling
  // the flow the dropped arcs carried) and check the re-solved optimum and
  // surviving flows equal a from-scratch build of the same final problem.
  FlowNetworkBuilder b(6);  // 0 st, 1 ed, 2-3 lefts, 4-5 rights
  std::vector<ArcId> arcs;
  auto add = [&](NodeId f, NodeId t, std::int64_t cap, std::int64_t cost) {
    auto a = b.AddArc(f, t, cap, cost);
    ASSERT_TRUE(a.ok());
    arcs.push_back(*a);
  };
  add(0, 2, 2, 0);
  add(0, 3, 2, 0);
  add(2, 4, 1, -50);
  add(2, 5, 1, -10);
  add(3, 4, 1, -30);
  add(4, 1, 2, 0);
  add(5, 1, 1, 0);
  FlowNetwork net;
  b.Build(&net);
  ASSERT_TRUE(SspMinCostMaxFlow(&net, 0, 1).ok());

  // Cancel the doomed arcs along their full st->ed paths (ApplyDelta refuses
  // flow-carrying removals, and partial cancellation would break
  // conservation): l2->r5 rides st->l2 / r5->ed, l3->r4 rides st->l3 /
  // r4->ed.
  const auto cancel_path = [&](ArcId st_arc, ArcId mid_arc, ArcId ed_arc) {
    const std::int64_t f = net.Flow(mid_arc);
    if (f <= 0) return;
    for (const ArcId a : {st_arc, mid_arc, ed_arc}) {
      net.Push(net.ArcSlot(a), -f);
    }
  };
  cancel_path(arcs[0], arcs[3], arcs[6]);
  cancel_path(arcs[1], arcs[4], arcs[5]);
  std::vector<FlowNetworkBuilder::ArcSpec> added = {{3, 5, 1, -40},
                                                    {2, 4, 1, -20}};
  std::vector<ArcId> remap;
  ASSERT_TRUE(b.ApplyDelta(&net, added, {arcs[3], arcs[4]}, &remap).ok());
  EXPECT_EQ(remap[static_cast<std::size_t>(arcs[2])], arcs[2]);
  EXPECT_EQ(remap[static_cast<std::size_t>(arcs[3])], -1);
  // Surviving flow was re-installed on the compacted CSR.
  EXPECT_EQ(net.Flow(remap[static_cast<std::size_t>(arcs[2])]),
            static_cast<std::int64_t>(1));
  auto patched = SspMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(patched.ok());

  FlowNetworkBuilder fb(6);
  FlowNetwork fnet;
  ASSERT_TRUE(fb.AddArc(0, 2, 2, 0).ok());
  ASSERT_TRUE(fb.AddArc(0, 3, 2, 0).ok());
  ASSERT_TRUE(fb.AddArc(2, 4, 1, -50).ok());
  ASSERT_TRUE(fb.AddArc(2, 5, 1, -10).ok());
  ASSERT_TRUE(fb.AddArc(4, 1, 2, 0).ok());
  ASSERT_TRUE(fb.AddArc(5, 1, 1, 0).ok());
  ASSERT_TRUE(fb.AddArc(3, 5, 1, -40).ok());
  ASSERT_TRUE(fb.AddArc(2, 4, 1, -20).ok());
  fb.Build(&fnet);
  auto scratch = SspMinCostMaxFlow(&fnet, 0, 1);
  ASSERT_TRUE(scratch.ok());
  // The patched network resumes from the surviving flow, so its incremental
  // result plus what was already on the wire must equal the fresh optimum.
  std::int64_t patched_cost = 0;
  std::int64_t patched_flow = 0;
  for (ArcId a = 0; a < b.num_arcs(); ++a) {
    if (b.arc_from(a) == 0) patched_flow += net.Flow(a);
    patched_cost += b.arc_cost(a) * net.Flow(a);
  }
  EXPECT_EQ(patched_flow, scratch->flow);
  EXPECT_EQ(patched_cost, scratch->cost);
}

}  // namespace
}  // namespace flow
}  // namespace ltc
