// Algorithm unit tests: paper Example 1-4 traces, per-algorithm behaviour,
// and the exhaustive optimum on hand-built instances.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/aam.h"
#include "algo/base_off.h"
#include "algo/exhaustive.h"
#include "algo/laf.h"
#include "algo/mcf_ltc.h"
#include "algo/random_assign.h"
#include "algo/registry.h"
#include "gen/example_paper.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"
#include "model/quality.h"
#include "sim/engine.h"

namespace ltc {
namespace algo {
namespace {

using model::EligibilityIndex;
using model::ProblemInstance;
using model::TaskId;
using model::WorkerIndex;

struct Fixture {
  ProblemInstance instance;
  std::unique_ptr<EligibilityIndex> index;
};

Fixture PaperFixture(double epsilon = 0.2) {
  auto instance = gen::PaperExampleInstance(epsilon);
  instance.status().CheckOK();
  Fixture f{std::move(instance).value(), nullptr};
  auto index = EligibilityIndex::Build(&f.instance);
  index.status().CheckOK();
  f.index = std::make_unique<EligibilityIndex>(std::move(index).value());
  return f;
}

/// Runs an online scheduler over the stream, returning per-worker traces.
std::vector<std::vector<TaskId>> Drive(OnlineScheduler* s,
                                       const Fixture& f) {
  s->Init(f.instance, *f.index).CheckOK();
  std::vector<std::vector<TaskId>> trace;
  std::vector<TaskId> assigned;
  for (const auto& w : f.instance.workers) {
    if (s->Done()) break;
    s->OnArrival(w, &assigned).CheckOK();
    trace.push_back(assigned);
  }
  return trace;
}

// ---- LAF: paper Example 3, exact trace ----

TEST(LafTest, ReproducesPaperExampleThree) {
  Fixture f = PaperFixture();
  Laf laf;
  auto trace = Drive(&laf, f);
  // "t2 and t1 are assigned to w1 ... t1 and t2 are also assigned to
  //  w2, w3, w4 ... LAF would keep assigning t3 ... 8 workers are needed."
  ASSERT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace[0], (std::vector<TaskId>{1, 0}));  // w1: t2 first (0.92)
  EXPECT_EQ(trace[1], (std::vector<TaskId>{0, 1}));  // w2: t1 first
  EXPECT_EQ(trace[2], (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(trace[3], (std::vector<TaskId>{0, 1}));  // w4 ties -> lower id
  for (int w = 4; w < 8; ++w) {
    EXPECT_EQ(trace[static_cast<std::size_t>(w)],
              (std::vector<TaskId>{2}));  // t3 only
  }
  EXPECT_EQ(laf.arrangement().MaxWorkerIndex(), 8);
  EXPECT_TRUE(laf.arrangement().AllCompleted());
  // Paper: S = {3.61, 3.54} after w4.
  EXPECT_NEAR(laf.arrangement().accumulated(0), 3.6112, 1e-3);
  EXPECT_NEAR(laf.arrangement().accumulated(1), 3.5360, 1e-3);
  EXPECT_TRUE(
      model::ValidateArrangement(f.instance, laf.arrangement(), true).ok());
}

// ---- AAM: follows Algorithm 3 (see EXPERIMENTS.md on the paper's trace) ----

TEST(AamTest, FollowsAlgorithmThreeOnPaperExample) {
  Fixture f = PaperFixture();
  Aam aam;
  auto trace = Drive(&aam, f);
  // Algorithm 3 executed faithfully: LGF for w1-w2, switch to LRF at w3
  // (avg = 3.06 < maxRemain = 3.22), finishing with 6 workers. The paper's
  // narrated trace (7 workers) keeps LGF one arrival longer than its own
  // switch rule; we follow the pseudocode.
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0], (std::vector<TaskId>{1, 0}));  // LGF, same as LAF
  EXPECT_EQ(trace[1], (std::vector<TaskId>{0, 1}));  // LGF
  EXPECT_EQ(trace[2], (std::vector<TaskId>{2, 0}));  // LRF: t3 most remaining
  EXPECT_EQ(aam.last_strategy(), Aam::Strategy::kLrf);
  EXPECT_EQ(aam.arrangement().MaxWorkerIndex(), 6);
  EXPECT_TRUE(aam.arrangement().AllCompleted());
  EXPECT_TRUE(
      model::ValidateArrangement(f.instance, aam.arrangement(), true).ok());
  // AAM beats LAF on this instance (paper's qualitative claim).
  Fixture f2 = PaperFixture();
  Laf laf;
  Drive(&laf, f2);
  EXPECT_LT(aam.arrangement().MaxWorkerIndex(),
            laf.arrangement().MaxWorkerIndex());
}

TEST(AamTest, StartsWithLgfWhenAverageDominates) {
  Fixture f = PaperFixture();
  Aam aam;
  aam.Init(f.instance, *f.index).CheckOK();
  std::vector<TaskId> assigned;
  aam.OnArrival(f.instance.workers[0], &assigned).CheckOK();
  // avg = 3 * 3.219 / 2 = 4.83 >= maxRemain = 3.219 -> LGF.
  EXPECT_EQ(aam.last_strategy(), Aam::Strategy::kLgf);
}

// ---- MCF-LTC ----

TEST(McfLtcTest, CompletesPaperExample) {
  Fixture f = PaperFixture();
  McfLtc mcf;
  auto result = mcf.Run(f.instance, *f.index);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  // All 8 workers fall inside the first batch (1.5m = 9 > 8); the flow
  // maximises total Acc*, which on this matrix needs workers up to w7
  // (the paper's Example 2 narrates an idealised 6).
  EXPECT_EQ(result->latency, 7);
  EXPECT_EQ(result->stats.mcf_batches, 1);
  EXPECT_GT(result->stats.mcf_augmentations, 0);
  EXPECT_TRUE(model::ValidateArrangement(f.instance, result->arrangement,
                                         true)
                  .ok());
  // The flow solution maximises the total Acc* pulled from the batch: it
  // must be at least every greedy baseline's.
  Fixture f2 = PaperFixture();
  Laf laf;
  Drive(&laf, f2);
  double laf_total = 0;
  for (const auto& a : laf.arrangement().assignments()) laf_total += a.acc_star;
  EXPECT_GE(result->stats.total_acc_star, laf_total - 1e-9);
}

TEST(McfLtcTest, BatchFactorValidation) {
  Fixture f = PaperFixture();
  McfLtcOptions options;
  options.batch_factor = 0.0;
  McfLtc mcf(options);
  EXPECT_FALSE(mcf.Run(f.instance, *f.index).ok());
}

TEST(McfLtcTest, SmallBatchesStillComplete) {
  Fixture f = PaperFixture();
  McfLtcOptions options;
  options.batch_factor = 0.34;  // batch of 2 workers
  options.first_batch_factor = 1.0;
  McfLtc mcf(options);
  auto result = mcf.Run(f.instance, *f.index);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  EXPECT_GT(result->stats.mcf_batches, 1);
  EXPECT_TRUE(model::ValidateArrangement(f.instance, result->arrangement,
                                         true)
                  .ok());
}

TEST(McfLtcTest, TieBreakPrefersEarlyWorkers) {
  // Uniform accuracies: every optimum has equal cost, so the tie-break must
  // pull the latency down to the exhaustive optimum.
  ProblemInstance instance;
  instance.epsilon = 0.2;  // delta = 3.22 -> 4 workers per task at Acc*=0.85
  instance.capacity = 1;
  instance.acc_min = 0.5;
  std::vector<std::vector<double>> matrix(12, std::vector<double>(2, 0.96));
  auto acc = model::MatrixAccuracy::Create(matrix);
  ASSERT_TRUE(acc.ok());
  instance.accuracy = acc.value();
  for (TaskId t = 0; t < 2; ++t) {
    instance.tasks.push_back(model::Task{t, {0, 0}});
  }
  for (WorkerIndex w = 1; w <= 12; ++w) {
    model::Worker worker;
    worker.index = w;
    worker.historical_accuracy = 0.96;
    instance.workers.push_back(worker);
  }
  ASSERT_TRUE(instance.Validate().ok());
  auto index = EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());

  McfLtc with_tie;  // default: tie-break on
  auto r1 = with_tie.Run(instance, *index);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->completed);
  // Each task needs ceil(3.22 / 0.846) = 4 workers; K = 1 -> 8 workers.
  EXPECT_EQ(r1->latency, 8);

  McfLtcOptions no_tie_options;
  no_tie_options.index_tie_break = false;
  McfLtc no_tie(no_tie_options);
  auto r2 = no_tie.Run(instance, *index);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->completed);
  EXPECT_GE(r2->latency, r1->latency);  // tie-break can only help
}

// ---- Base-off ----

TEST(BaseOffTest, CompletesPaperExample) {
  Fixture f = PaperFixture();
  BaseOff base;
  auto result = base.Run(f.instance, *f.index);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  EXPECT_GE(result->latency, 6);  // cannot beat the optimum
  EXPECT_TRUE(model::ValidateArrangement(f.instance, result->arrangement,
                                         true)
                  .ok());
}

TEST(BaseOffTest, PrefersScarceTasks) {
  // Task 0 is servable by every worker, task 1 only by worker 1. Base-off
  // must route worker 1 to the scarce task first.
  ProblemInstance instance;
  instance.epsilon = 0.65;  // delta ~= 0.86 < (2*0.99-1)^2: one worker
                            // completes a task
  instance.capacity = 1;
  instance.acc_min = 0.5;
  std::vector<std::vector<double>> matrix = {
      {0.99, 0.99},  // w1: eligible for both
      {0.99, 0.0},   // w2: only t0
      {0.99, 0.0},   // w3: only t0
  };
  auto acc = model::MatrixAccuracy::Create(matrix);
  ASSERT_TRUE(acc.ok());
  instance.accuracy = acc.value();
  for (TaskId t = 0; t < 2; ++t) {
    instance.tasks.push_back(model::Task{t, {0, 0}});
  }
  for (WorkerIndex w = 1; w <= 3; ++w) {
    model::Worker worker;
    worker.index = w;
    worker.historical_accuracy = 0.99;
    instance.workers.push_back(worker);
  }
  ASSERT_TRUE(instance.Validate().ok());
  auto index = EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());
  BaseOff base;
  auto result = base.Run(instance, *index);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  ASSERT_GE(result->arrangement.size(), 2);
  // w1 must take t1 (the scarce task), leaving t0 to w2.
  EXPECT_EQ(result->arrangement.assignments()[0].worker, 1);
  EXPECT_EQ(result->arrangement.assignments()[0].task, 1);
  EXPECT_EQ(result->latency, 2);
}

// ---- Random ----

TEST(RandomAssignTest, DeterministicPerSeedAndValid) {
  Fixture f = PaperFixture();
  RandomAssign a(123);
  RandomAssign b(123);
  RandomAssign c(456);
  auto trace_a = Drive(&a, f);
  auto trace_b = Drive(&b, f);
  auto trace_c = Drive(&c, f);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_TRUE(a.arrangement().AllCompleted());
  EXPECT_TRUE(
      model::ValidateArrangement(f.instance, a.arrangement(), true).ok());
  (void)trace_c;  // different seed may or may not differ; validity matters
  EXPECT_TRUE(
      model::ValidateArrangement(f.instance, c.arrangement(), true).ok());
}

// ---- Exhaustive ----

TEST(ExhaustiveTest, FindsOptimumOnPaperExample) {
  Fixture f = PaperFixture();
  Exhaustive exhaustive;
  auto result = exhaustive.Run(f.instance, *f.index);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  // With Acc* semantics and delta = 3.219, 6 workers are necessary and
  // sufficient (each task needs 4 answers, 12 assignments / K=2 = 6).
  EXPECT_EQ(result->latency, 6);
  EXPECT_TRUE(model::ValidateArrangement(f.instance, result->arrangement,
                                         true)
                  .ok());
}

TEST(ExhaustiveTest, RefusesLargeInstances) {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 10;
  cfg.num_workers = 100;
  cfg.grid_side = 50;
  auto instance = gen::GenerateSynthetic(cfg);
  ASSERT_TRUE(instance.ok());
  auto index = EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());
  Exhaustive exhaustive;
  EXPECT_TRUE(
      exhaustive.Run(*instance, *index).status().IsFailedPrecondition());
}

TEST(ExhaustiveTest, DetectsInfeasibleInstance) {
  ProblemInstance instance;
  instance.epsilon = 0.05;  // delta ~= 6: unreachable with 2 weak workers
  instance.capacity = 1;
  instance.acc_min = 0.5;
  auto acc = model::MatrixAccuracy::Create({{0.9}, {0.9}});
  ASSERT_TRUE(acc.ok());
  instance.accuracy = acc.value();
  instance.tasks.push_back(model::Task{0, {0, 0}});
  for (WorkerIndex w = 1; w <= 2; ++w) {
    model::Worker worker;
    worker.index = w;
    worker.historical_accuracy = 0.9;
    instance.workers.push_back(worker);
  }
  ASSERT_TRUE(instance.Validate().ok());
  auto index = EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());
  Exhaustive exhaustive;
  auto result = exhaustive.Run(instance, *index);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->completed);
}

// ---- Registry ----

TEST(RegistryTest, StandardRoster) {
  const auto names = StandardAlgorithms();
  ASSERT_EQ(names.size(), 5u);
  for (const auto& name : names) {
    auto online = IsOnlineAlgorithm(name);
    ASSERT_TRUE(online.ok()) << name;
    if (online.value()) {
      EXPECT_TRUE(MakeOnlineScheduler(name, 1).ok()) << name;
    } else {
      EXPECT_TRUE(MakeOfflineScheduler(name).ok()) << name;
    }
  }
  EXPECT_TRUE(IsOnlineAlgorithm("NoSuchAlgo").status().IsNotFound());
  EXPECT_TRUE(MakeOfflineScheduler("LAF").status().IsNotFound());
  EXPECT_TRUE(MakeOnlineScheduler("MCF-LTC", 1).status().IsNotFound());
}

}  // namespace
}  // namespace algo
}  // namespace ltc
