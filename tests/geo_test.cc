// Tests for geometry primitives and both spatial indexes, including
// randomized cross-checks against brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "geo/grid_index.h"
#include "geo/kdtree.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace ltc {
namespace geo {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(RectTest, ContainsAndDistance) {
  Rect r{0, 0, 10, 5};
  EXPECT_TRUE(r.Contains({5, 2}));
  EXPECT_TRUE(r.Contains({0, 0}));   // closed
  EXPECT_TRUE(r.Contains({10, 5}));  // closed
  EXPECT_FALSE(r.Contains({11, 2}));
  EXPECT_DOUBLE_EQ(r.SquaredDistanceTo({5, 2}), 0.0);
  EXPECT_DOUBLE_EQ(r.SquaredDistanceTo({13, 9}), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(r.SquaredDistanceTo({-2, 2}), 4.0);
}

TEST(RectTest, BoundingBox) {
  Rect r = Rect::BoundingBox({{1, 5}, {-2, 3}, {4, -1}});
  EXPECT_DOUBLE_EQ(r.min_x, -2);
  EXPECT_DOUBLE_EQ(r.min_y, -1);
  EXPECT_DOUBLE_EQ(r.max_x, 4);
  EXPECT_DOUBLE_EQ(r.max_y, 5);
}

std::vector<std::int64_t> BruteRadius(const std::vector<Point>& pts,
                                      const Point& c, double r) {
  std::vector<std::int64_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (SquaredDistance(pts[i], c) <= r * r) {
      out.push_back(static_cast<std::int64_t>(i));
    }
  }
  return out;
}

std::int64_t BruteNearest(const std::vector<Point>& pts, const Point& c) {
  std::int64_t best = -1;
  double best_d2 = 1e300;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d2 = SquaredDistance(pts[i], c);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<std::int64_t>(i);
    }
  }
  return best;
}

TEST(GridIndexTest, RejectsBadCellSize) {
  EXPECT_FALSE(GridIndex::Build({{0, 0}}, 0.0).ok());
  EXPECT_FALSE(GridIndex::Build({{0, 0}}, -1.0).ok());
}

TEST(GridIndexTest, EmptyIndex) {
  auto index = GridIndex::Build({}, 10.0);
  ASSERT_TRUE(index.ok());
  std::vector<std::int64_t> out;
  index->QueryRadius({0, 0}, 100.0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index->Nearest({0, 0}), -1);
  EXPECT_EQ(index->CountRadius({0, 0}, 100.0), 0);
}

TEST(GridIndexTest, SinglePoint) {
  auto index = GridIndex::Build({{5, 5}}, 10.0);
  ASSERT_TRUE(index.ok());
  std::vector<std::int64_t> out;
  index->QueryRadius({5, 5}, 0.0, &out);
  EXPECT_EQ(out, std::vector<std::int64_t>{0});
  index->QueryRadius({6, 5}, 0.5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index->Nearest({100, 100}), 0);
}

TEST(GridIndexTest, RadiusBoundaryInclusive) {
  auto index = GridIndex::Build({{0, 0}, {3, 4}}, 2.0);
  ASSERT_TRUE(index.ok());
  std::vector<std::int64_t> out;
  index->QueryRadius({0, 0}, 5.0, &out);  // exactly on the circle
  EXPECT_EQ(out.size(), 2u);
}

class SpatialIndexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SpatialIndexRandomTest, GridMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.UniformInt(1, 300));
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  auto index = GridIndex::Build(pts, rng.Uniform(0.5, 30.0));
  ASSERT_TRUE(index.ok());
  for (int q = 0; q < 30; ++q) {
    const Point c{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
    const double r = rng.Uniform(0, 40);
    std::vector<std::int64_t> got;
    index->QueryRadius(c, r, &got);
    // The grid emits cell order; compare as sets.
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRadius(pts, c, r));
    EXPECT_EQ(index->CountRadius(c, r),
              static_cast<std::int64_t>(BruteRadius(pts, c, r).size()));
    const std::int64_t nearest = index->Nearest(c);
    // Nearest may differ in id only if distances tie exactly; compare
    // distances instead of ids.
    ASSERT_GE(nearest, 0);
    EXPECT_DOUBLE_EQ(
        SquaredDistance(pts[static_cast<std::size_t>(nearest)], c),
        SquaredDistance(pts[static_cast<std::size_t>(BruteNearest(pts, c))],
                        c));
  }
}

TEST_P(SpatialIndexRandomTest, KdTreeMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const int n = static_cast<int>(rng.UniformInt(1, 300));
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    // Clustered points stress the kd-tree more than uniform ones.
    const double cx = rng.UniformInt(0, 3) * 30.0;
    const double cy = rng.UniformInt(0, 3) * 30.0;
    pts.push_back({cx + rng.Gaussian(0, 5), cy + rng.Gaussian(0, 5)});
  }
  KdTree tree(pts);
  EXPECT_EQ(tree.size(), pts.size());
  for (int q = 0; q < 30; ++q) {
    const Point c{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
    const double r = rng.Uniform(0, 40);
    std::vector<std::int64_t> got;
    tree.QueryRadius(c, r, &got);
    EXPECT_EQ(got, BruteRadius(pts, c, r));
    const std::int64_t nearest = tree.Nearest(c);
    ASSERT_GE(nearest, 0);
    EXPECT_DOUBLE_EQ(
        SquaredDistance(pts[static_cast<std::size_t>(nearest)], c),
        SquaredDistance(pts[static_cast<std::size_t>(BruteNearest(pts, c))],
                        c));
  }
}

TEST_P(SpatialIndexRandomTest, GridAndKdTreeAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const int n = static_cast<int>(rng.UniformInt(2, 200));
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 50), rng.Uniform(0, 50)});
  }
  auto grid = GridIndex::Build(pts, 7.0);
  ASSERT_TRUE(grid.ok());
  KdTree tree(pts);
  for (int q = 0; q < 20; ++q) {
    const Point c{rng.Uniform(0, 50), rng.Uniform(0, 50)};
    const double r = rng.Uniform(0, 20);
    std::vector<std::int64_t> a;
    std::vector<std::int64_t> b;
    grid->QueryRadius(c, r, &a);
    tree.QueryRadius(c, r, &b);
    std::sort(a.begin(), a.end());  // grid emits cell order
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexRandomTest,
                         ::testing::Range(0, 10));

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  std::vector<std::int64_t> out;
  tree.QueryRadius({0, 0}, 10, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.Nearest({0, 0}), -1);
}

TEST(KdTreeTest, DuplicatePointsAllReturned) {
  KdTree tree({{1, 1}, {1, 1}, {1, 1}});
  std::vector<std::int64_t> out;
  tree.QueryRadius({1, 1}, 0.0, &out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{0, 1, 2}));
}

}  // namespace
}  // namespace geo
}  // namespace ltc
