// Tests of `ltc_serve --scheduler=mcf`: the streaming MCF-LTC scheduler
// behind the batch streaming protocol (algo/mcf_stream.h). Pins the two
// contracts DESIGN.md section 10 states for the svc path:
//
//  * determinism — the assignment log is byte-identical for any --threads
//    and for warm starts on or off (warm starts are an optimisation, not a
//    policy change), pinned per --shards;
//  * offline parity — over an EventLogFromInstance replay at batching
//    deadline 0 the admitted worker sequence is exactly the offline worker
//    order against a fully materialised task set, so the streamed
//    commitments reproduce McfLtc::Run batch for batch.

#include <vector>

#include "algo/mcf_ltc.h"
#include "gen/stream.h"
#include "gen/synthetic.h"
#include "io/event_log.h"
#include "model/eligibility.h"
#include "svc/serve_main.h"
#include "svc/stream_engine.h"
#include "gtest/gtest.h"

namespace ltc {
namespace svc {
namespace {

gen::StreamConfig SmallStream(std::uint64_t seed = 11) {
  gen::StreamConfig cfg;
  cfg.num_tasks = 60;
  cfg.num_workers = 3000;
  cfg.task_rate = 30.0;
  cfg.worker_rate = 300.0;
  cfg.seed = seed;
  return cfg;
}

StreamOptions McfOptions(double deadline) {
  StreamOptions options;
  options.algorithm = "MCF";
  options.batch_deadline = deadline;
  return options;
}

// Deadline-0 admission over an EventLogFromInstance stream feeds MCF the
// instance's worker order against a fully materialised task set, so the
// Theorem-2 batch boundaries — and every flow solve between them — match
// the offline run exactly. This mirrors DeadlineZeroMatchesRunOnline
// (svc_stream_test.cc) for the batch streaming protocol.
TEST(McfStreamParityTest, DeadlineZeroMatchesOfflineMcfLtc) {
  gen::SyntheticConfig synth;
  synth.num_tasks = 50;
  synth.num_workers = 2500;
  synth.seed = 9;
  auto instance = gen::GenerateSynthetic(synth);
  ASSERT_TRUE(instance.ok());
  auto index = model::EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());

  algo::McfLtc mcf;
  auto offline = mcf.Run(instance.value(), index.value());
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();

  auto log = io::EventLogFromInstance(instance.value());
  ASSERT_TRUE(log.ok());
  std::vector<StreamAssignment> streamed;
  auto replay = ReplayEventLog(log.value(), McfOptions(0.0), &streamed);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  // Offline stops at completion; the stream serves the whole log but the
  // scheduler drains every later batch unassigned once all tasks reached
  // delta, so the committed sequences agree assignment for assignment.
  const model::Arrangement& arr = offline.value().arrangement;
  ASSERT_EQ(static_cast<std::int64_t>(streamed.size()), arr.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].worker, arr.assignments()[i].worker);
    EXPECT_EQ(streamed[i].task, arr.assignments()[i].task);
  }
  EXPECT_EQ(replay.value().run.latency, offline.value().latency);
  EXPECT_EQ(replay.value().run.completed, offline.value().completed);
  EXPECT_TRUE(replay.value().stream.validated);
  EXPECT_EQ(replay.value().stream.assignment_latency.count, arr.size());
}

// Warm starts carry flow and potentials across batch solves but must not
// change a single commitment: parity holds with them disabled too.
TEST(McfStreamParityTest, ColdSolvesMatchOfflineToo) {
  gen::SyntheticConfig synth;
  synth.num_tasks = 40;
  synth.num_workers = 2000;
  synth.seed = 17;
  auto instance = gen::GenerateSynthetic(synth);
  ASSERT_TRUE(instance.ok());
  auto index = model::EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());

  algo::McfLtc mcf;
  auto offline = mcf.Run(instance.value(), index.value());
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();

  auto log = io::EventLogFromInstance(instance.value());
  ASSERT_TRUE(log.ok());
  StreamOptions options = McfOptions(0.0);
  options.mcf_warm_start = false;
  std::vector<StreamAssignment> streamed;
  auto replay = ReplayEventLog(log.value(), options, &streamed);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  const model::Arrangement& arr = offline.value().arrangement;
  ASSERT_EQ(static_cast<std::int64_t>(streamed.size()), arr.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].worker, arr.assignments()[i].worker);
    EXPECT_EQ(streamed[i].task, arr.assignments()[i].task);
  }
}

// The service determinism contract, for the batch protocol: byte-identical
// assignment logs for any --threads value, with warm starts on or off and
// with the periodic drift check enabled.
TEST(McfServeDeterminismTest, LogIdenticalAcrossThreadsWarmthAndDriftCheck) {
  auto log = gen::GenerateStreamEvents(SmallStream(7));
  ASSERT_TRUE(log.ok());

  StreamOptions options = McfOptions(0.4);
  options.threads = 1;
  auto one = RunService(log.value(), options);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_GT(one.value().metrics.assignments, 0);

  options.threads = 4;
  auto four = RunService(log.value(), options);
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  EXPECT_EQ(one.value().assignment_log, four.value().assignment_log);

  options.threads = 2;
  options.mcf_warm_start = false;
  auto cold = RunService(log.value(), options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(one.value().assignment_log, cold.value().assignment_log);

  options.mcf_warm_start = true;
  options.mcf_drift_check_every = 3;
  auto checked = RunService(log.value(), options);
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_EQ(one.value().assignment_log, checked.value().assignment_log);
}

// Sharded MCF: each shard runs its own persistent incremental solver; the
// merged log is pinned per shard count and byte-identical across --threads.
TEST(McfServeDeterminismTest, ShardedLogPinnedAcrossThreads) {
  auto log = gen::GenerateStreamEvents(SmallStream(13));
  ASSERT_TRUE(log.ok());

  StreamOptions options = McfOptions(0.4);
  options.shards = 2;
  options.threads = 1;
  auto one = RunService(log.value(), options);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_GT(one.value().metrics.assignments, 0);
  EXPECT_TRUE(one.value().metrics.validated);

  options.threads = 4;
  auto four = RunService(log.value(), options);
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  EXPECT_EQ(one.value().assignment_log, four.value().assignment_log);

  options.shards = 4;
  auto wide = RunService(log.value(), options);
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_GT(wide.value().metrics.assignments, 0);
  EXPECT_TRUE(wide.value().metrics.validated);
}

// A deadline-batched single-shard run completes tasks and validates against
// the full LTC constraint set (capacity, eligibility, accuracy accounting).
TEST(McfServeTest, BatchedRunValidates) {
  auto log = gen::GenerateStreamEvents(SmallStream(29));
  ASSERT_TRUE(log.ok());

  std::vector<StreamAssignment> streamed;
  auto replay = ReplayEventLog(log.value(), McfOptions(0.5), &streamed);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_GT(replay.value().stream.assignments, 0);
  EXPECT_GT(replay.value().stream.batches, 0);
  EXPECT_TRUE(replay.value().stream.validated);
  // Commit times never precede the flush that produced them and are
  // monotone — the log replays as a valid service trace.
  double last = 0.0;
  for (const StreamAssignment& a : streamed) {
    EXPECT_GE(a.time, last);
    last = a.time;
  }
}

}  // namespace
}  // namespace svc
}  // namespace ltc
