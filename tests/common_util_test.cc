// Tests for string utilities, math helpers, the table printer and flags.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/flags.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/table.h"

namespace ltc {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JoinSplitTest, RoundTrips) {
  std::vector<std::string> parts = {"a", "", "c"};
  EXPECT_EQ(Join(parts, ","), "a,,c");
  EXPECT_EQ(Split("a,,c", ','), parts);
  EXPECT_EQ(Split("solo", ','), std::vector<std::string>{"solo"});
  EXPECT_EQ(Join({}, ","), "");
}

TEST(TrimTest, RemovesEdgesOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024ULL * 1024ULL), "3.0 MiB");
}

TEST(HumanDurationTest, PicksUnits) {
  EXPECT_EQ(HumanDuration(2.5), "2.50 s");
  EXPECT_EQ(HumanDuration(0.0025), "2.50 ms");
  EXPECT_EQ(HumanDuration(2.5e-6), "2.50 us");
}

TEST(ParseTest, ValidatesWholeString) {
  double d;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  std::int64_t i;
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("4.2", &i));
}

TEST(MathTest, SigmoidProperties) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(30.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-30.0), 0.0, 1e-12);
  // Symmetry: s(x) + s(-x) == 1.
  for (double x : {0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12) << x;
  }
  // No overflow at extremes.
  EXPECT_EQ(Sigmoid(1000.0), 1.0);
  EXPECT_EQ(Sigmoid(-1000.0), 0.0);
}

TEST(MathTest, ClampAndCeilDiv) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 5), 1);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"algo", "latency"});
  tp.AddRow({"AAM", "812"});
  tp.AddRow({"MCF-LTC", "1024"});
  const std::string out = tp.Render();
  EXPECT_NE(out.find("algo"), std::string::npos);
  EXPECT_NE(out.find("MCF-LTC"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(tp.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter tp({"name", "note"});
  tp.AddRow({"a,b", "say \"hi\""});
  const std::string csv = tp.RenderCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, CellHelpers) {
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(static_cast<std::int64_t>(42)), "42");
}

TEST(TablePrinterTest, WriteCsvRoundTrip) {
  TablePrinter tp({"x"});
  tp.AddRow({"1"});
  const std::string path = "/tmp/ltc_table_test/out.csv";
  ASSERT_TRUE(tp.WriteCsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_STREQ(buf, "x\n1\n");
}

// ---- Flags ----

Flag<std::int64_t> FLAG_test_int("test_int", 3, "an int flag");
Flag<double> FLAG_test_double("test_double", 0.5, "a double flag");
Flag<bool> FLAG_test_bool("test_bool", false, "a bool flag");
Flag<std::string> FLAG_test_str("test_str", "d", "a string flag");

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",        "--test_int=7",  "--test_double",
                        "2.5",         "--test_bool",   "--test_str=hello"};
  ASSERT_TRUE(ParseCommandLine(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(FLAG_test_int.Get(), 7);
  EXPECT_DOUBLE_EQ(FLAG_test_double.Get(), 2.5);
  EXPECT_TRUE(FLAG_test_bool.Get());
  EXPECT_EQ(FLAG_test_str.Get(), "hello");
}

TEST(FlagsTest, NegatedBool) {
  const char* argv[] = {"prog", "--no-test_bool"};
  ASSERT_TRUE(ParseCommandLine(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(FLAG_test_bool.Get());
}

TEST(FlagsTest, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--no_such_flag=1"};
  EXPECT_TRUE(ParseCommandLine(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagsTest, RejectsBadValue) {
  const char* argv[] = {"prog", "--test_int=abc"};
  EXPECT_TRUE(ParseCommandLine(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagsTest, PositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--test_int=1", "pos2"};
  std::vector<std::string> positional;
  ASSERT_TRUE(
      ParseCommandLine(4, const_cast<char**>(argv), &positional).ok());
  EXPECT_EQ(positional, (std::vector<std::string>{"pos1", "pos2"}));
  const char* argv2[] = {"prog", "stray"};
  EXPECT_FALSE(ParseCommandLine(2, const_cast<char**>(argv2)).ok());
}

TEST(FlagsTest, UsageListsFlags) {
  const std::string usage = FlagUsage();
  EXPECT_NE(usage.find("test_int"), std::string::npos);
  EXPECT_NE(usage.find("an int flag"), std::string::npos);
}

}  // namespace
}  // namespace ltc
