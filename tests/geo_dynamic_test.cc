// Property tests for geo::GridIndex dynamic mode: random
// Insert/Remove/Relocate sequences must leave the index answering radius
// and k-NN queries identically to an index rebuilt from scratch over the
// same live point set — the invariant svc::StreamEngine's incremental
// open-task index rests on (DESIGN.md §8).

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/random.h"
#include "geo/grid_index.h"
#include "gtest/gtest.h"

namespace ltc {
namespace geo {
namespace {

using PointMap = std::map<std::int64_t, Point>;

/// Brute-force radius answer over the reference map, ascending ids.
std::vector<std::int64_t> BruteRadius(const PointMap& points,
                                      const Point& center, double radius) {
  std::vector<std::int64_t> out;
  for (const auto& [id, p] : points) {
    if (SquaredDistance(p, center) <= radius * radius) out.push_back(id);
  }
  return out;
}

/// Brute-force k-NN answer: ascending (distance, id).
std::vector<std::int64_t> BruteKNearest(const PointMap& points,
                                        const Point& center, std::size_t k) {
  std::vector<std::pair<double, std::int64_t>> scored;
  for (const auto& [id, p] : points) {
    scored.push_back({SquaredDistance(p, center), id});
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::int64_t> out;
  for (std::size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

/// Rebuilds a dynamic index from scratch (ascending-id insertion) over the
/// same geometry — the "rebuilt" side of the equivalence contract.
GridIndex RebuildDynamic(const PointMap& points, const Rect& world,
                         double cell_size) {
  auto rebuilt = GridIndex::BuildDynamic(world, cell_size);
  EXPECT_TRUE(rebuilt.ok());
  for (const auto& [id, p] : points) {
    EXPECT_TRUE(rebuilt.value().Insert(id, p).ok());
  }
  return std::move(rebuilt).value();
}

TEST(GridIndexDynamicTest, RandomSequencesMatchRebuiltIndex) {
  Rng rng(20260728);
  const Rect world{0.0, 0.0, 100.0, 100.0};
  for (int sequence = 0; sequence < 100; ++sequence) {
    const double cell_size = rng.Uniform(2.0, 15.0);
    auto built = GridIndex::BuildDynamic(world, cell_size);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    GridIndex index = std::move(built).value();
    PointMap reference;

    const int ops = static_cast<int>(rng.UniformInt(20, 80));
    for (int op = 0; op < ops; ++op) {
      // Points deliberately stray outside the world: out-of-bounds arrivals
      // must clamp into boundary cells without breaking any query.
      const Point p{rng.Uniform(-15.0, 115.0), rng.Uniform(-15.0, 115.0)};
      const double dice = rng.NextDouble();
      if (reference.empty() || dice < 0.5) {
        std::int64_t id = rng.UniformInt(0, 199);
        while (reference.count(id) > 0) id = (id + 1) % 200;
        ASSERT_TRUE(index.Insert(id, p).ok());
        reference[id] = p;
      } else if (dice < 0.75) {
        auto it = reference.begin();
        std::advance(it, rng.UniformInt(
                             0, static_cast<std::int64_t>(reference.size()) -
                                    1));
        ASSERT_TRUE(index.Remove(it->first).ok());
        reference.erase(it);
      } else {
        auto it = reference.begin();
        std::advance(it, rng.UniformInt(
                             0, static_cast<std::int64_t>(reference.size()) -
                                    1));
        ASSERT_TRUE(index.Relocate(it->first, p).ok());
        it->second = p;
      }
    }

    ASSERT_EQ(index.size(), reference.size());
    const GridIndex rebuilt = RebuildDynamic(reference, world, cell_size);

    for (int query = 0; query < 8; ++query) {
      const Point center{rng.Uniform(-10.0, 110.0), rng.Uniform(-10.0, 110.0)};
      const double radius = rng.Uniform(0.0, 60.0);

      // Radius queries: the mutated index and the rebuilt index must agree
      // *exactly* (same ids in the same cell-major order), and both must
      // match brute force as a set.
      std::vector<std::int64_t> got;
      std::vector<std::int64_t> fresh;
      index.QueryRadius(center, radius, &got);
      rebuilt.QueryRadius(center, radius, &fresh);
      EXPECT_EQ(got, fresh) << "sequence " << sequence;
      EXPECT_EQ(index.CountRadius(center, radius),
                static_cast<std::int64_t>(got.size()));
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, BruteRadius(reference, center, radius))
          << "sequence " << sequence;

      // k-NN: ascending (distance, id) is layout-independent, so all three
      // agree element-wise.
      const auto k = static_cast<std::size_t>(rng.UniformInt(1, 12));
      std::vector<std::int64_t> knn;
      std::vector<std::int64_t> knn_fresh;
      index.KNearest(center, k, &knn);
      rebuilt.KNearest(center, k, &knn_fresh);
      EXPECT_EQ(knn, knn_fresh) << "sequence " << sequence;
      EXPECT_EQ(knn, BruteKNearest(reference, center, k))
          << "sequence " << sequence;

      // Nearest is k-NN with k = 1.
      const std::int64_t nearest = index.Nearest(center);
      if (reference.empty()) {
        EXPECT_EQ(nearest, -1);
      } else {
        EXPECT_EQ(nearest, BruteKNearest(reference, center, 1).front());
      }
    }
  }
}

// Directed regression for the insert-side clamp: a Relocate (or Insert) to
// a coordinate outside the built bounds must land in the clamped edge cell
// — the same cell the query window clamps to — so radius and k-NN queries
// keep finding the point. Exercises all four sides plus the corners at
// points less than one cell beyond the edge (where truncation-vs-floor
// bugs hide) and far beyond it.
TEST(GridIndexDynamicTest, RelocateOutsideBoundsStaysQueryable) {
  const Rect world{0.0, 0.0, 100.0, 100.0};
  const std::vector<Point> destinations = {
      {-0.5, 50.0},   {100.5, 50.0},  {50.0, -0.5},   {50.0, 100.5},
      {-0.5, -0.5},   {100.5, 100.5}, {-40.0, 50.0},  {140.0, 50.0},
      {50.0, -40.0},  {50.0, 140.0},  {-40.0, -40.0}, {140.0, 140.0},
  };
  for (double cell_size : {1.0, 7.0, 30.0}) {
    auto built = GridIndex::BuildDynamic(world, cell_size);
    ASSERT_TRUE(built.ok());
    GridIndex index = std::move(built).value();
    ASSERT_TRUE(index.Insert(0, {50.0, 50.0}).ok());

    for (const Point& p : destinations) {
      ASSERT_TRUE(index.Relocate(0, p).ok());
      // Radius queries centred on the point (and just inside the world)
      // find it.
      std::vector<std::int64_t> got;
      index.QueryRadius(p, 0.0, &got);
      EXPECT_EQ(got, std::vector<std::int64_t>{0})
          << "cell " << cell_size << " point (" << p.x << ", " << p.y << ")";
      index.QueryRadius({50.0, 50.0}, 200.0, &got);
      EXPECT_EQ(got, std::vector<std::int64_t>{0});
      // k-NN from anywhere still surfaces the only live point.
      index.KNearest({50.0, 50.0}, 1, &got);
      EXPECT_EQ(got, std::vector<std::int64_t>{0});
      EXPECT_EQ(index.Nearest(p), 0);
      // A fresh insert at the same out-of-bounds location agrees with the
      // relocated index (insert-side and relocate-side clamp match).
      auto fresh = GridIndex::BuildDynamic(world, cell_size);
      ASSERT_TRUE(fresh.ok());
      ASSERT_TRUE(fresh.value().Insert(0, p).ok());
      std::vector<std::int64_t> fresh_got;
      fresh.value().QueryRadius(p, 0.0, &fresh_got);
      EXPECT_EQ(fresh_got, std::vector<std::int64_t>{0});
    }
  }
}

TEST(GridIndexDynamicTest, MutationErrors) {
  auto built = GridIndex::BuildDynamic(Rect{0, 0, 10, 10}, 1.0);
  ASSERT_TRUE(built.ok());
  GridIndex index = std::move(built).value();

  EXPECT_TRUE(index.Insert(3, {1.0, 1.0}).ok());
  EXPECT_TRUE(index.Insert(3, {2.0, 2.0}).IsInvalidArgument());
  EXPECT_TRUE(index.Insert(-1, {2.0, 2.0}).IsInvalidArgument());
  EXPECT_TRUE(index.Remove(4).IsNotFound());
  EXPECT_TRUE(index.Relocate(4, {2.0, 2.0}).IsNotFound());
  EXPECT_TRUE(index.Remove(3).ok());
  EXPECT_TRUE(index.Remove(3).IsNotFound());
  EXPECT_EQ(index.size(), 0u);
}

TEST(GridIndexDynamicTest, StaticIndexRejectsMutation) {
  auto built = GridIndex::Build({{1.0, 1.0}, {2.0, 2.0}}, 1.0);
  ASSERT_TRUE(built.ok());
  GridIndex index = std::move(built).value();
  EXPECT_FALSE(index.dynamic());
  EXPECT_TRUE(index.Insert(5, {3.0, 3.0}).IsFailedPrecondition());
  EXPECT_TRUE(index.Remove(0).IsFailedPrecondition());
  EXPECT_TRUE(index.Relocate(0, {3.0, 3.0}).IsFailedPrecondition());
}

TEST(GridIndexDynamicTest, StaticKNearestMatchesBruteForce) {
  Rng rng(7);
  std::vector<Point> points;
  PointMap reference;
  for (std::int64_t i = 0; i < 60; ++i) {
    const Point p{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    points.push_back(p);
    reference[i] = p;
  }
  auto built = GridIndex::Build(points, 5.0);
  ASSERT_TRUE(built.ok());
  const GridIndex index = std::move(built).value();
  for (int query = 0; query < 20; ++query) {
    const Point center{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    const auto k = static_cast<std::size_t>(rng.UniformInt(1, 70));
    std::vector<std::int64_t> knn;
    index.KNearest(center, k, &knn);
    EXPECT_EQ(knn, BruteKNearest(reference, center, k));
  }
}

}  // namespace
}  // namespace geo
}  // namespace ltc
