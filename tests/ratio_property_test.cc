// Empirical approximation/competitive-ratio checks against the exhaustive
// optimum on randomized tiny instances.
//
// The paper proves MCF-LTC is a 7.5-approximation (Theorem 3) and
// LAF / AAM are 7.967- / 7.738-competitive (Theorems 5-6) under the
// assumption eps <= e^-1.5. Those are worst-case bounds over adversarial
// inputs; on random instances the observed ratios should sit far below
// them. These tests (a) never find an algorithm beating the optimum, and
// (b) flag any instance whose ratio exceeds the paper's guarantee — either
// event would indicate an implementation bug.

#include <gtest/gtest.h>

#include <memory>

#include "algo/exhaustive.h"
#include "algo/registry.h"
#include "common/random.h"
#include "gen/synthetic.h"
#include "model/accuracy.h"
#include "model/eligibility.h"
#include "sim/engine.h"

namespace ltc {
namespace {

struct Built {
  model::ProblemInstance instance;
  std::unique_ptr<model::EligibilityIndex> index;
};

/// Random tiny matrix-accuracy instance (exhaustive-searchable).
Built RandomTinyInstance(std::uint64_t seed) {
  Rng rng(seed);
  const auto tasks = static_cast<model::TaskId>(rng.UniformInt(2, 3));
  const auto workers = static_cast<model::WorkerIndex>(rng.UniformInt(6, 10));
  model::ProblemInstance instance;
  // eps <= e^-1.5 ~= 0.223 is the regime of the paper's ratio theorems.
  instance.epsilon = rng.Uniform(0.15, 0.223);
  instance.capacity = static_cast<std::int32_t>(rng.UniformInt(1, 2));
  instance.acc_min = 0.66;
  std::vector<std::vector<double>> matrix(
      static_cast<std::size_t>(workers),
      std::vector<double>(static_cast<std::size_t>(tasks), 0.0));
  for (auto& row : matrix) {
    for (auto& acc : row) {
      // Mostly eligible pairs, a few spam-ineligible ones.
      acc = rng.Bernoulli(0.85) ? rng.Uniform(0.70, 0.99) : 0.3;
    }
  }
  auto fn = model::MatrixAccuracy::Create(std::move(matrix));
  fn.status().CheckOK();
  instance.accuracy = fn.value();
  for (model::TaskId t = 0; t < tasks; ++t) {
    instance.tasks.push_back(model::Task{t, {static_cast<double>(t), 0.0}});
  }
  for (model::WorkerIndex w = 1; w <= workers; ++w) {
    model::Worker worker;
    worker.index = w;
    worker.location = {static_cast<double>(w), 1.0};
    worker.historical_accuracy = 0.9;
    instance.workers.push_back(worker);
  }
  instance.Validate().CheckOK();
  Built b{std::move(instance), nullptr};
  auto index = model::EligibilityIndex::Build(&b.instance);
  index.status().CheckOK();
  b.index =
      std::make_unique<model::EligibilityIndex>(std::move(index).value());
  return b;
}

class RatioTest : public ::testing::TestWithParam<int> {};

TEST_P(RatioTest, ObservedRatiosStayWithinPaperGuarantees) {
  Built b = RandomTinyInstance(static_cast<std::uint64_t>(GetParam()) + 9000);
  algo::Exhaustive exhaustive;
  auto optimal = exhaustive.Run(b.instance, *b.index);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();
  if (!optimal->completed) {
    // Infeasible: no algorithm may claim completion.
    for (const auto& name : algo::StandardAlgorithms()) {
      auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
      ASSERT_TRUE(metrics.ok()) << name;
      EXPECT_FALSE(metrics->completed) << name;
    }
    return;
  }
  ASSERT_GT(optimal->latency, 0);

  struct Guarantee {
    const char* name;
    double ratio;
  };
  // Theorems 3/5/6; Random and Base-off carry no guarantee — checked only
  // against optimality from below.
  const Guarantee guarantees[] = {
      {"MCF-LTC", 7.5}, {"LAF", 7.967}, {"AAM", 7.738}};
  for (const auto& [name, ratio] : guarantees) {
    auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
    ASSERT_TRUE(metrics.ok()) << name;
    if (!metrics->completed) {
      // A greedy can strand the tail of a *tight* stream (cf. the Theorem-4
      // adversarial test); the ratio guarantees assume worker supply beyond
      // the optimum prefix, which tiny instances may lack.
      continue;
    }
    EXPECT_GE(metrics->latency, optimal->latency) << name;
    // The theorems bound the ratio asymptotically (plus additive slack
    // |T|/K + 1); on these tiny instances allow the additive term.
    const double slack =
        static_cast<double>(b.instance.num_tasks()) /
            static_cast<double>(b.instance.capacity) +
        1.0;
    EXPECT_LE(static_cast<double>(metrics->latency),
              ratio * static_cast<double>(optimal->latency) + slack)
        << name << " exceeded its guarantee on " << b.instance.Summary();
  }
  for (const char* name : {"Base-off", "Random"}) {
    auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
    ASSERT_TRUE(metrics.ok()) << name;
    if (metrics->completed) {
      EXPECT_GE(metrics->latency, optimal->latency) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RatioTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace ltc
