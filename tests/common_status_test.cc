#include "common/status.h"

#include <gtest/gtest.h>

#include <utility>

namespace ltc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, ServiceCodes) {
  // The server-facing codes (PR 7): backpressure rejects with
  // resource-exhausted, a closing/closed service answers unavailable.
  const Status u = Status::Unavailable("ingest queue closed");
  EXPECT_TRUE(u.IsUnavailable());
  EXPECT_EQ(u.code(), StatusCode::kUnavailable);
  EXPECT_EQ(u.ToString(), "unavailable: ingest queue closed");
  const Status r = Status::ResourceExhausted("backpressure");
  EXPECT_TRUE(r.IsResourceExhausted());
  EXPECT_FALSE(Status::OK().IsUnavailable());
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "resource-exhausted");
  // The public (code, message) constructor, which the wire codec uses to
  // rebuild a Status from an ack frame.
  EXPECT_TRUE(Status(StatusCode::kUnavailable, "x").IsUnavailable());
  EXPECT_TRUE(Status(StatusCode::kOk, "").ok());
}

TEST(StatusTest, WithContextPrependsAndPreservesCode) {
  Status s = Status::NotFound("task 7").WithContext("loading workload");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "loading workload: task 7");
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusCodeNameTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid-argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "io-error");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  LTC_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

StatusOr<int> DoubleIt(int x) {
  LTC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusMacrosTest, AssignOrReturn) {
  StatusOr<int> ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(DoubleIt(0).status().IsOutOfRange());
}

}  // namespace
}  // namespace ltc
