// Cross-cutting property sweeps: quality-threshold monotonicity, the
// relationship between per-task completion statistics and the MinMax
// objective, and bound consistency across the epsilon grid.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "algo/registry.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"
#include "model/quality.h"
#include "sim/arrangement_stats.h"
#include "sim/engine.h"

namespace ltc {
namespace {

TEST(QualityPropertyTest, DeltaMonotoneDecreasingInEpsilon) {
  double prev = std::numeric_limits<double>::infinity();
  for (double eps = 0.02; eps < 0.9; eps += 0.02) {
    auto delta = model::DeltaFromEpsilon(eps);
    ASSERT_TRUE(delta.ok());
    EXPECT_LT(delta.value(), prev) << "eps=" << eps;
    EXPECT_GT(delta.value(), 0.0);
    prev = delta.value();
  }
}

TEST(QualityPropertyTest, TheoremBoundsScaleLinearlyInTasks) {
  const double delta = 4.6;
  double prev_lower = 0.0;
  for (std::int64_t tasks = 100; tasks <= 1000; tasks += 100) {
    const auto bounds = model::TheoremTwoBounds(tasks, delta, 6);
    EXPECT_GT(bounds.lower, prev_lower);
    EXPECT_GT(bounds.upper, bounds.lower);
    // Upper/lower ratio is the constant 10 + O(1/delta) of Theorem 2.
    EXPECT_NEAR(bounds.upper / bounds.lower, 10.0, 1.0);
    prev_lower = bounds.lower;
  }
}

class StatsVsObjectiveTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(StatsVsObjectiveTest, MaxCompletionIndexMatchesLatency) {
  const auto [name, seed] = GetParam();
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 15;
  cfg.num_workers = 2500;
  cfg.grid_side = 140.0;
  cfg.seed = static_cast<std::uint64_t>(seed + 300);
  auto instance = gen::GenerateSynthetic(cfg);
  ASSERT_TRUE(instance.ok());
  auto index = model::EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());

  auto scheduler = algo::MakeOnlineScheduler(name, 11);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(*instance, *index).CheckOK();
  std::vector<model::TaskId> assigned;
  for (const auto& w : instance->workers) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(w, &assigned).CheckOK();
  }
  if (!(*scheduler)->arrangement().AllCompleted()) {
    GTEST_SKIP() << "instance not completable for this seed";
  }
  auto stats =
      sim::ComputeArrangementStats(*instance, (*scheduler)->arrangement());
  ASSERT_TRUE(stats.ok());
  // For every online scheduler the run stops at the arrival that completes
  // the last task, so the max per-task completion index IS the objective.
  EXPECT_EQ(stats->max, (*scheduler)->arrangement().MaxWorkerIndex()) << name;
  EXPECT_EQ(stats->completed_tasks, instance->num_tasks());
  // Distribution sanity: mean <= p95 <= max, median <= p95.
  EXPECT_LE(stats->mean, static_cast<double>(stats->max));
  EXPECT_LE(stats->median, stats->p95);
  EXPECT_LE(stats->p95, stats->max);
}

INSTANTIATE_TEST_SUITE_P(
    OnlineRoster, StatsVsObjectiveTest,
    ::testing::Combine(::testing::Values("LAF", "AAM", "Random", "LGF-only",
                                         "LRF-only"),
                       ::testing::Values(1, 2, 3)));

TEST(StatsVsObjectiveTest, OfflineBatchingCanOvershootCompletion) {
  // MCF-LTC commits whole batches: its MinMax latency may exceed the max
  // per-task completion index, but never undershoot it.
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 15;
  cfg.num_workers = 2500;
  cfg.grid_side = 140.0;
  cfg.seed = 42;
  auto instance = gen::GenerateSynthetic(cfg);
  ASSERT_TRUE(instance.ok());
  auto index = model::EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());
  auto scheduler = algo::MakeOfflineScheduler("MCF-LTC");
  ASSERT_TRUE(scheduler.ok());
  auto result = (*scheduler)->Run(*instance, *index);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->completed);
  auto stats = sim::ComputeArrangementStats(*instance, result->arrangement);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(result->latency, stats->max);
}

TEST(QualityPropertyTest, EpsilonSweepKeepsLatencyOrderingConsistent) {
  // On one fixed instance family, every algorithm's latency is monotone
  // non-increasing in epsilon (weaker quality -> never more workers).
  for (const char* name : {"LAF", "AAM"}) {
    std::int64_t prev = std::numeric_limits<std::int64_t>::max();
    for (double eps : {0.06, 0.10, 0.14, 0.18, 0.22}) {
      gen::SyntheticConfig cfg;
      cfg.num_tasks = 15;
      cfg.num_workers = 2500;
      cfg.grid_side = 140.0;
      cfg.epsilon = eps;
      cfg.seed = 77;  // same stream; only delta changes
      auto instance = gen::GenerateSynthetic(cfg);
      ASSERT_TRUE(instance.ok());
      auto index = model::EligibilityIndex::Build(&instance.value());
      ASSERT_TRUE(index.ok());
      auto metrics = sim::RunAlgorithm(name, *instance, *index);
      ASSERT_TRUE(metrics.ok());
      ASSERT_TRUE(metrics->completed);
      EXPECT_LE(metrics->latency, prev) << name << " eps=" << eps;
      prev = metrics->latency;
    }
  }
}

}  // namespace
}  // namespace ltc
