// Deep-dive tests for MCF-LTC: batching boundaries, agreement with an
// independent flow solver, option handling, and incomplete-stream behaviour.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "algo/mcf_ltc.h"
#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "gen/example_paper.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"
#include "model/quality.h"

namespace ltc {
namespace algo {
namespace {

struct Built {
  model::ProblemInstance instance;
  std::unique_ptr<model::EligibilityIndex> index;
};

Built BuildSynthetic(std::int64_t tasks, std::int64_t workers,
                     std::uint64_t seed, double epsilon = 0.1) {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_workers = workers;
  cfg.grid_side = 120.0;
  cfg.epsilon = epsilon;
  cfg.seed = seed;
  auto instance = gen::GenerateSynthetic(cfg);
  instance.status().CheckOK();
  Built b{std::move(instance).value(), nullptr};
  auto index = model::EligibilityIndex::Build(&b.instance);
  index.status().CheckOK();
  b.index =
      std::make_unique<model::EligibilityIndex>(std::move(index).value());
  return b;
}

TEST(McfLtcEdgeTest, StreamShorterThanFirstBatch) {
  // 8 workers but m covers far more: a single truncated batch must still
  // work and use whatever is available.
  Built b = BuildSynthetic(12, 8, 3);
  McfLtc mcf;
  auto result = mcf.Run(b.instance, *b.index);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.mcf_batches, 1);
  EXPECT_EQ(result->stats.workers_seen, 8);
  EXPECT_FALSE(result->completed);  // 8 workers cannot cover 12 tasks
  EXPECT_TRUE(model::ValidateArrangement(b.instance, result->arrangement,
                                         false)
                  .ok());
}

TEST(McfLtcEdgeTest, ExactBatchMultipleConsumesAllBatches) {
  Built b = BuildSynthetic(6, 400, 5);
  McfLtcOptions options;
  options.first_batch_factor = 1.0;  // uniform batches
  McfLtc mcf(options);
  auto result = mcf.Run(b.instance, *b.index);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  // Sanity on the batch count: m = ceil-free floor(|T|*ceil(delta)/K) =
  // floor(6*5/6) = 5 workers per batch; completion within the stream.
  EXPECT_GE(result->stats.mcf_batches, 1);
  EXPECT_LE(result->stats.workers_seen, b.instance.num_workers());
  EXPECT_TRUE(model::ValidateArrangement(b.instance, result->arrangement,
                                         true)
                  .ok());
}

TEST(McfLtcEdgeTest, SingleTaskSingleEligibleWorkerPool) {
  // A 1-task instance: MCF degenerates to picking the best workers.
  Built b = BuildSynthetic(1, 200, 7, /*epsilon=*/0.2);
  McfLtc mcf;
  auto result = mcf.Run(b.instance, *b.index);
  ASSERT_TRUE(result.ok());
  if (result->completed) {
    // Every assignment targets the single task.
    for (const auto& a : result->arrangement.assignments()) {
      EXPECT_EQ(a.task, 0);
    }
    EXPECT_GE(result->arrangement.accumulated(0),
              b.instance.Delta() - model::kQualityTol);
  }
}

TEST(McfLtcEdgeTest, FirstBatchFlowAgreesWithReferenceSolver) {
  // Rebuild the first batch's flow network by hand and check that MCF-LTC's
  // claimed total Acc* from the flow phase is consistent with the optimum
  // computed by the independent Bellman-Ford solver (no potentials).
  auto instance_or = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance_or.ok());
  const auto& instance = instance_or.value();
  auto index = model::EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());

  // Hand-built network: st=0, ed=1, workers 2..9, tasks 10..12; all 8
  // workers are in the first batch (1.5m = 9 > 8).
  const double delta = instance.Delta();
  flow::FlowNetworkBuilder builder(13);
  constexpr std::int64_t kScale = 1'000'000;
  for (int w = 0; w < 8; ++w) {
    ASSERT_TRUE(builder.AddArc(0, 2 + w, 2, 0).ok());
    for (int t = 0; t < 3; ++t) {
      const double acc_star =
          instance.AccStar(static_cast<model::WorkerIndex>(w + 1),
                           static_cast<model::TaskId>(t));
      ASSERT_TRUE(builder.AddArc(2 + w, 10 + t, 1,
                                 -static_cast<std::int64_t>(
                                     std::llround(acc_star * kScale)))
                      .ok());
    }
  }
  const auto demand = static_cast<std::int64_t>(std::ceil(delta));
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(builder.AddArc(10 + t, 1, demand, 0).ok());
  }
  flow::FlowNetwork net;
  builder.Build(&net);
  auto reference = flow::BellmanFordMinCostMaxFlow(&net, 0, 1);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->flow, 12);  // 3 tasks x demand 4, workers suffice

  // MCF-LTC's flow-phase Acc* must match the reference optimum: its total
  // includes top-up assignments too, so it is at least the flow optimum.
  McfLtcOptions options;
  options.index_tie_break = false;  // same objective as the reference
  McfLtc mcf(options);
  auto result = mcf.Run(instance, *index);
  ASSERT_TRUE(result.ok());
  const double reference_acc_star =
      -static_cast<double>(reference->cost) / static_cast<double>(kScale);
  EXPECT_GE(result->stats.total_acc_star, reference_acc_star - 1e-6);
}

TEST(McfLtcEdgeTest, AugmentationCountBoundedByDemand) {
  Built b = BuildSynthetic(10, 500, 11);
  McfLtc mcf;
  auto result = mcf.Run(b.instance, *b.index);
  ASSERT_TRUE(result.ok());
  // Each augmentation delivers at least one unit of task demand; total
  // demand is |T| * ceil(delta) at most (per batch demands only shrink).
  const auto demand_cap = static_cast<std::int64_t>(
      b.instance.num_tasks() * std::ceil(b.instance.Delta()));
  EXPECT_LE(result->stats.mcf_augmentations,
            demand_cap * std::max<std::int64_t>(1, result->stats.mcf_batches));
  EXPECT_GT(result->stats.mcf_augmentations, 0);
}

TEST(McfLtcEdgeTest, LatencyNeverBelowSupplyOfLastTask) {
  // MCF-LTC's latency can exceed the last completion (batch effect) but the
  // arrangement must still complete everything it claims.
  Built b = BuildSynthetic(8, 600, 13);
  McfLtc mcf;
  auto result = mcf.Run(b.instance, *b.index);
  ASSERT_TRUE(result.ok());
  if (result->completed) {
    for (model::TaskId t = 0; t < b.instance.num_tasks(); ++t) {
      EXPECT_TRUE(result->arrangement.TaskCompleted(t)) << "task " << t;
    }
    EXPECT_EQ(result->latency, result->arrangement.MaxWorkerIndex());
  }
}

/// Same Acc as an inner model but with the distance structure hidden, which
/// forces EligibilityIndex down the full-scan (ascending id) path.
class ScanOnlyAccuracy : public model::AccuracyFunction {
 public:
  explicit ScanOnlyAccuracy(
      std::shared_ptr<const model::AccuracyFunction> inner)
      : inner_(std::move(inner)) {}
  double Acc(const model::Worker& w, const model::Task& t) const override {
    return inner_->Acc(w, t);
  }
  std::string Name() const override {
    return "scan-only(" + inner_->Name() + ")";
  }

 private:
  std::shared_ptr<const model::AccuracyFunction> inner_;
};

/// Instance whose grid cells do NOT enumerate tasks in id order: task 1 sits
/// in the cell left of tasks 0 and 2, so the grid path yields {1, 0, 2}.
model::ProblemInstance GridOrderInstance(
    std::shared_ptr<const model::AccuracyFunction> accuracy) {
  model::ProblemInstance instance;
  instance.epsilon = 0.2;
  instance.capacity = 2;
  instance.accuracy = std::move(accuracy);
  instance.tasks = {{0, {40.0, 0.0}}, {1, {0.0, 0.0}}, {2, {42.0, 0.0}}};
  for (int i = 0; i < 30; ++i) {
    model::Worker w;
    w.index = static_cast<model::WorkerIndex>(i + 1);
    w.location = {15.0 + static_cast<double>(i % 11),
                  -3.0 + static_cast<double>(i % 7)};
    w.historical_accuracy = 0.85 + 0.01 * static_cast<double>(i % 10);
    instance.workers.push_back(w);
  }
  return instance;
}

TEST(McfLtcEdgeTest, GridCellOrderDoesNotChangeResults) {
  auto sigmoid = std::make_shared<model::SigmoidDistanceAccuracy>(30.0);
  model::ProblemInstance grid_instance = GridOrderInstance(sigmoid);
  model::ProblemInstance scan_instance =
      GridOrderInstance(std::make_shared<ScanOnlyAccuracy>(sigmoid));

  auto grid_index = model::EligibilityIndex::Build(&grid_instance);
  ASSERT_TRUE(grid_index.ok());
  ASSERT_TRUE(grid_index->spatial());
  auto scan_index = model::EligibilityIndex::Build(&scan_instance);
  ASSERT_TRUE(scan_index.ok());
  ASSERT_FALSE(scan_index->spatial());

  // The premise of the regression: for an all-tasks-eligible worker the raw
  // grid enumeration is cell order {1, 0, 2} — not ascending — while the
  // sorted batch API restores ascending ids.
  std::vector<model::TaskId> raw;
  grid_index->EligibleTasks(grid_instance.workers[0], &raw);
  ASSERT_EQ(raw, (std::vector<model::TaskId>{1, 0, 2}));
  std::vector<model::TaskId> sorted;
  grid_index->EligibleTasksSorted(grid_instance.workers[0], &sorted);
  EXPECT_EQ(sorted, (std::vector<model::TaskId>{0, 1, 2}));

  // MCF-LTC must be oblivious to the spatial index's internal order: the
  // grid-pruned run and the full-scan run see identical Acc values and must
  // produce identical schedules.
  McfLtc mcf_grid;
  auto grid_result = mcf_grid.Run(grid_instance, *grid_index);
  ASSERT_TRUE(grid_result.ok());
  McfLtc mcf_scan;
  auto scan_result = mcf_scan.Run(scan_instance, *scan_index);
  ASSERT_TRUE(scan_result.ok());

  EXPECT_EQ(grid_result->completed, scan_result->completed);
  EXPECT_EQ(grid_result->latency, scan_result->latency);
  EXPECT_EQ(grid_result->stats.assignments, scan_result->stats.assignments);
  EXPECT_NEAR(grid_result->stats.total_acc_star,
              scan_result->stats.total_acc_star, 1e-9);
  EXPECT_TRUE(grid_result->completed);
  EXPECT_TRUE(model::ValidateArrangement(grid_instance,
                                         grid_result->arrangement, true)
                  .ok());
}

TEST(McfLtcEdgeTest, HugeBatchFactorSingleBatch) {
  Built b = BuildSynthetic(6, 300, 17);
  McfLtcOptions options;
  options.batch_factor = 100.0;  // one giant batch
  McfLtc mcf(options);
  auto result = mcf.Run(b.instance, *b.index);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.mcf_batches, 1);
  EXPECT_TRUE(model::ValidateArrangement(b.instance, result->arrangement,
                                         result->completed)
                  .ok());
}

}  // namespace
}  // namespace algo
}  // namespace ltc
