// Tests for the model layer: accuracy functions, quality thresholds,
// arrangements + constraint validation, eligibility queries, voting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/math_util.h"
#include "gen/example_paper.h"
#include "gen/synthetic.h"
#include "model/accuracy.h"
#include "model/arrangement.h"
#include "model/eligibility.h"
#include "model/problem.h"
#include "model/quality.h"
#include "model/voting.h"

namespace ltc {
namespace model {
namespace {

Worker MakeWorker(WorkerIndex index, double x, double y, double acc) {
  Worker w;
  w.index = index;
  w.location = {x, y};
  w.historical_accuracy = acc;
  return w;
}

// ---- Accuracy functions ----

TEST(SigmoidDistanceAccuracyTest, MatchesPaperEquationOne) {
  SigmoidDistanceAccuracy fn(30.0);
  const Task t{0, {0, 0}};
  // At distance 0: Acc = p / (1 + e^-30) ~= p.
  EXPECT_NEAR(fn.Acc(MakeWorker(1, 0, 0, 0.9), t), 0.9, 1e-9);
  // At distance dmax: Acc = p / 2 exactly.
  EXPECT_NEAR(fn.Acc(MakeWorker(1, 30, 0, 0.9), t), 0.45, 1e-12);
  // Far away: Acc -> 0.
  EXPECT_LT(fn.Acc(MakeWorker(1, 100, 0, 0.9), t), 1e-20);
  // Monotone decreasing in distance.
  double prev = 1.0;
  for (double d : {0.0, 5.0, 10.0, 20.0, 29.0, 35.0}) {
    const double acc = fn.Acc(MakeWorker(1, d, 0, 0.9), t);
    EXPECT_LT(acc, prev);
    prev = acc;
  }
}

TEST(SigmoidDistanceAccuracyTest, AccStarDefinition) {
  SigmoidDistanceAccuracy fn(30.0);
  const Task t{0, {0, 0}};
  const Worker w = MakeWorker(1, 0, 0, 0.96);
  // Example 2: Acc* = (2*0.96 - 1)^2 ~= 0.85.
  EXPECT_NEAR(fn.AccStar(w, t), Sqr(2 * fn.Acc(w, t) - 1), 1e-12);
  EXPECT_NEAR(fn.AccStar(w, t), 0.8464, 1e-3);
}

TEST(SigmoidDistanceAccuracyTest, EligibleRadiusIsExactBoundary) {
  SigmoidDistanceAccuracy fn(30.0);
  const double acc_min = 0.66;
  for (double p : {0.70, 0.82, 0.90, 0.99}) {
    const Worker w = MakeWorker(1, 0, 0, p);
    const auto radius = fn.EligibleRadius(w, acc_min);
    ASSERT_TRUE(radius.has_value());
    ASSERT_GT(*radius, 0.0);
    const Task just_inside{0, {*radius - 1e-9, 0}};
    const Task just_outside{0, {*radius + 1e-6, 0}};
    EXPECT_GE(fn.Acc(w, just_inside), acc_min) << "p=" << p;
    EXPECT_LT(fn.Acc(w, just_outside), acc_min) << "p=" << p;
  }
}

TEST(SigmoidDistanceAccuracyTest, EligibleRadiusEmptyForWeakWorker) {
  SigmoidDistanceAccuracy fn(30.0);
  // Worker below the threshold can never reach it.
  const auto radius = fn.EligibleRadius(MakeWorker(1, 0, 0, 0.5), 0.66);
  ASSERT_TRUE(radius.has_value());
  EXPECT_LT(*radius, 0.0);
}

TEST(MatrixAccuracyTest, LooksUpByWorkerIndexAndTaskId) {
  auto fn = MatrixAccuracy::Create({{0.9, 0.8}, {0.7, 0.6}});
  ASSERT_TRUE(fn.ok());
  const Task t0{0, {0, 0}};
  const Task t1{1, {0, 0}};
  EXPECT_DOUBLE_EQ((*fn)->Acc(MakeWorker(1, 0, 0, 1), t0), 0.9);
  EXPECT_DOUBLE_EQ((*fn)->Acc(MakeWorker(1, 0, 0, 1), t1), 0.8);
  EXPECT_DOUBLE_EQ((*fn)->Acc(MakeWorker(2, 0, 0, 1), t0), 0.7);
  // Out of range -> 0 (defensive).
  EXPECT_DOUBLE_EQ((*fn)->Acc(MakeWorker(3, 0, 0, 1), t0), 0.0);
}

TEST(MatrixAccuracyTest, RejectsBadMatrices) {
  EXPECT_FALSE(MatrixAccuracy::Create({}).ok());
  EXPECT_FALSE(MatrixAccuracy::Create({{0.5}, {0.5, 0.5}}).ok());
  EXPECT_FALSE(MatrixAccuracy::Create({{1.5}}).ok());
  EXPECT_FALSE(MatrixAccuracy::Create({{-0.1}}).ok());
}

TEST(StepDistanceAccuracyTest, HardCutoff) {
  StepDistanceAccuracy fn(10.0);
  const Task t{0, {0, 0}};
  EXPECT_DOUBLE_EQ(fn.Acc(MakeWorker(1, 9.99, 0, 0.9), t), 0.9);
  EXPECT_DOUBLE_EQ(fn.Acc(MakeWorker(1, 10.01, 0, 0.9), t), 0.0);
  EXPECT_DOUBLE_EQ(*fn.EligibleRadius(MakeWorker(1, 0, 0, 0.9), 0.66), 10.0);
  EXPECT_LT(*fn.EligibleRadius(MakeWorker(1, 0, 0, 0.5), 0.66), 0.0);
}

TEST(FlatAccuracyTest, IgnoresDistance) {
  FlatAccuracy fn;
  const Task t{0, {1000, 1000}};
  EXPECT_DOUBLE_EQ(fn.Acc(MakeWorker(1, 0, 0, 0.77), t), 0.77);
  EXPECT_FALSE(fn.EligibleRadius(MakeWorker(1, 0, 0, 0.77), 0.66).has_value());
}

// ---- Quality ----

TEST(QualityTest, DeltaFromEpsilon) {
  auto d = DeltaFromEpsilon(0.2);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 3.2189, 1e-4);  // paper Example 2
  EXPECT_NEAR(DeltaFromEpsilon(0.1).value(), 4.6052, 1e-4);
  EXPECT_FALSE(DeltaFromEpsilon(0.0).ok());
  EXPECT_FALSE(DeltaFromEpsilon(1.0).ok());
  EXPECT_FALSE(DeltaFromEpsilon(-0.5).ok());
}

TEST(QualityTest, EpsilonDeltaRoundTrip) {
  for (double eps : {0.06, 0.10, 0.14, 0.18, 0.22}) {
    EXPECT_NEAR(EpsilonFromDelta(DeltaFromEpsilon(eps).value()), eps, 1e-12);
  }
}

TEST(QualityTest, ReachedDeltaTolerance) {
  EXPECT_TRUE(ReachedDelta(1.0, 1.0));
  EXPECT_TRUE(ReachedDelta(1.0 - 1e-12, 1.0));  // within tolerance
  EXPECT_FALSE(ReachedDelta(0.999, 1.0));
}

TEST(QualityTest, TheoremTwoBounds) {
  // |T|=3, delta=3.2189, K=2 -> lower = 4.83, upper = 50.3.
  const auto b = TheoremTwoBounds(3, 3.2189, 2);
  EXPECT_NEAR(b.lower, 3 * 3.2189 / 2, 1e-9);
  EXPECT_NEAR(b.upper, 10 * 3 * 3.2189 / 2 + 3.0 / 2 + 1, 1e-9);
  EXPECT_LT(b.lower, b.upper);
}

// ---- ProblemInstance validation ----

StatusOr<ProblemInstance> SmallInstance() {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 10;
  cfg.num_workers = 200;
  cfg.grid_side = 100.0;
  cfg.seed = 3;
  return gen::GenerateSynthetic(cfg);
}

TEST(ProblemInstanceTest, ValidatesGoodInstance) {
  auto instance = SmallInstance();
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->Validate().ok());
  EXPECT_EQ(instance->num_tasks(), 10);
  EXPECT_EQ(instance->num_workers(), 200);
  EXPECT_NEAR(instance->Delta(), 4.6052, 1e-4);
  EXPECT_NE(instance->Summary().find("|T|=10"), std::string::npos);
}

TEST(ProblemInstanceTest, RejectsBadParameters) {
  auto instance = SmallInstance();
  ASSERT_TRUE(instance.ok());
  ProblemInstance bad = *instance;
  bad.epsilon = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = *instance;
  bad.capacity = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = *instance;
  bad.accuracy = nullptr;
  EXPECT_FALSE(bad.Validate().ok());
  bad = *instance;
  bad.tasks.clear();
  EXPECT_FALSE(bad.Validate().ok());
  bad = *instance;
  bad.workers[5].index = 99;  // out of sequence
  EXPECT_FALSE(bad.Validate().ok());
  bad = *instance;
  bad.tasks[2].id = 7;  // not dense
  EXPECT_FALSE(bad.Validate().ok());
  bad = *instance;
  bad.workers[0].historical_accuracy = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
}

// ---- Arrangement ----

TEST(ArrangementTest, TracksAccumulationAndCompletion) {
  Arrangement arr(2, 1.0);
  EXPECT_FALSE(arr.AllCompleted());
  EXPECT_DOUBLE_EQ(arr.Remaining(0), 1.0);
  arr.Add(1, 0, 0.6);
  EXPECT_FALSE(arr.TaskCompleted(0));
  EXPECT_DOUBLE_EQ(arr.Remaining(0), 0.4);
  arr.Add(2, 0, 0.6);
  EXPECT_TRUE(arr.TaskCompleted(0));
  EXPECT_DOUBLE_EQ(arr.Remaining(0), 0.0);
  EXPECT_FALSE(arr.AllCompleted());
  arr.Add(2, 1, 1.0);
  EXPECT_TRUE(arr.AllCompleted());
  EXPECT_EQ(arr.MaxWorkerIndex(), 2);
  EXPECT_EQ(arr.Load(1), 1);
  EXPECT_EQ(arr.Load(2), 2);
  EXPECT_EQ(arr.Load(99), 0);
  EXPECT_EQ(arr.size(), 3);
  EXPECT_EQ(arr.completed_tasks(), 2);
}

TEST(ArrangementTest, ZeroDeltaIsInstantlyComplete) {
  Arrangement arr(3, 0.0);
  EXPECT_TRUE(arr.AllCompleted());
}

TEST(ValidateArrangementTest, AcceptsValidAndCatchesViolations) {
  auto instance_or = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance_or.ok());
  const auto& instance = instance_or.value();
  const double delta = instance.Delta();

  // Valid, completed arrangement: the paper's LAF outcome.
  Arrangement good(3, delta);
  const std::pair<WorkerIndex, TaskId> laf[] = {
      {1, 1}, {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1},
      {4, 0}, {4, 1}, {5, 2}, {6, 2}, {7, 2}, {8, 2}};
  for (auto [w, t] : laf) good.Add(w, t, instance.AccStar(w, t));
  EXPECT_TRUE(ValidateArrangement(instance, good, true).ok());

  // Capacity violation: worker 1 takes 3 tasks with K = 2.
  Arrangement over(3, delta);
  over.Add(1, 0, instance.AccStar(1, 0));
  over.Add(1, 1, instance.AccStar(1, 1));
  over.Add(1, 2, instance.AccStar(1, 2));
  EXPECT_TRUE(
      ValidateArrangement(instance, over, false).IsFailedPrecondition());

  // Duplicate pair.
  Arrangement dup(3, delta);
  dup.Add(1, 0, instance.AccStar(1, 0));
  dup.Add(1, 0, instance.AccStar(1, 0));
  EXPECT_TRUE(
      ValidateArrangement(instance, dup, false).IsFailedPrecondition());

  // Wrong Acc* recorded.
  Arrangement wrong(3, delta);
  wrong.Add(1, 0, 0.123);
  EXPECT_TRUE(ValidateArrangement(instance, wrong, false).IsInternal());

  // Out-of-range ids.
  Arrangement range(3, delta);
  range.Add(99, 0, 0.5);
  EXPECT_TRUE(ValidateArrangement(instance, range, false).IsOutOfRange());

  // Incomplete fails only when completion demanded.
  Arrangement partial(3, delta);
  partial.Add(1, 0, instance.AccStar(1, 0));
  EXPECT_TRUE(ValidateArrangement(instance, partial, false).ok());
  EXPECT_TRUE(
      ValidateArrangement(instance, partial, true).IsFailedPrecondition());
}

// ---- EligibilityIndex ----

TEST(EligibilityIndexTest, SpatialMatchesBruteForce) {
  auto instance_or = SmallInstance();
  ASSERT_TRUE(instance_or.ok());
  const auto& instance = instance_or.value();
  auto index_or = EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index_or.ok());
  const auto& index = index_or.value();
  EXPECT_TRUE(index.spatial());

  std::vector<TaskId> got;
  std::vector<TaskId> got_sorted;
  for (const Worker& w : instance.workers) {
    index.EligibleTasks(w, &got);
    std::sort(got.begin(), got.end());  // EligibleTasks order is unspecified
    index.EligibleTasksSorted(w, &got_sorted);
    std::vector<TaskId> expect;
    for (const Task& t : instance.tasks) {
      if (instance.Eligible(w.index, t.id)) expect.push_back(t.id);
    }
    ASSERT_EQ(got, expect) << "worker " << w.index;
    ASSERT_EQ(got_sorted, expect) << "worker " << w.index;
    EXPECT_EQ(index.CountEligible(w),
              static_cast<std::int64_t>(expect.size()));
  }
}

TEST(EligibilityIndexTest, MatrixModelFallsBackToScan) {
  auto instance_or = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance_or.ok());
  auto index_or = EligibilityIndex::Build(&instance_or.value());
  ASSERT_TRUE(index_or.ok());
  EXPECT_FALSE(index_or->spatial());
  std::vector<TaskId> got;
  index_or->EligibleTasks(instance_or->workers[0], &got);
  // All Table-I accuracies exceed 0.66: every task eligible for w1.
  EXPECT_EQ(got, (std::vector<TaskId>{0, 1, 2}));
}

TEST(EligibilityIndexTest, RejectsNullAndInvalid) {
  EXPECT_FALSE(EligibilityIndex::Build(nullptr).ok());
  ProblemInstance bad;
  EXPECT_FALSE(EligibilityIndex::Build(&bad).ok());
}

// ---- Voting ----

TEST(VotingTest, HighAccuracyWorkersBeatEpsilon) {
  auto instance_or = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance_or.ok());
  const auto& instance = instance_or.value();
  Arrangement arr(3, instance.Delta());
  const std::pair<WorkerIndex, TaskId> laf[] = {
      {1, 1}, {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1},
      {4, 0}, {4, 1}, {5, 2}, {6, 2}, {7, 2}, {8, 2}};
  for (auto [w, t] : laf) arr.Add(w, t, instance.AccStar(w, t));

  auto outcome = SimulateVoting(instance, arr, 2000, 11);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tasks, 3);
  EXPECT_EQ(outcome->trials, 2000);
  // Hoeffding promises < 0.2; with 4 workers at ~0.95 accuracy the true
  // error rate is far below it.
  EXPECT_LT(outcome->empirical_error_rate, 0.2);
  EXPECT_LT(outcome->max_task_error_rate, 0.2);
}

TEST(VotingTest, EmptyArrangementAndBadArgs) {
  auto instance_or = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance_or.ok());
  Arrangement empty(3, instance_or->Delta());
  auto outcome = SimulateVoting(*instance_or, empty, 10, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tasks, 0);
  EXPECT_DOUBLE_EQ(outcome->empirical_error_rate, 0.0);
  EXPECT_FALSE(SimulateVoting(*instance_or, empty, 0, 1).ok());
}

TEST(VotingTest, DeterministicForSeed) {
  auto instance_or = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance_or.ok());
  const auto& instance = instance_or.value();
  Arrangement arr(3, instance.Delta());
  arr.Add(1, 0, instance.AccStar(1, 0));
  arr.Add(2, 0, instance.AccStar(2, 0));
  auto a = SimulateVoting(instance, arr, 500, 99);
  auto b = SimulateVoting(instance, arr, 500, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->errors, b->errors);
}

}  // namespace
}  // namespace model
}  // namespace ltc
