// Crash-recovery tests for the durable service layer (DESIGN.md §11).
//
// The load-bearing property is determinism under restart: for a fixed
// (header, StreamOptions) configuration, an interrupted-and-recovered
// RecoverableService must emit an assignment log byte-identical to one
// that lived through the whole stream. The suite pins it three ways:
//   * a pure snapshot round-trip property (Serialize → Restore → continue
//     equals never-snapshotting) for every online scheduler × shard count;
//   * randomized crash points (destroying the service without Finish, the
//     crash model of io/wal.h) across schedulers × shards, recovered runs
//     compared byte-for-byte against golden uninterrupted runs;
//   * explicit damage: torn WAL tails, corrupt and truncated snapshots, a
//     snapshot claiming more events than the WAL holds, and injected
//     wal/ingest faults (common/fault_points.h).

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "common/fault_points.h"
#include "gen/stream.h"
#include "io/event_log.h"
#include "io/wal.h"
#include "io/workload_io.h"
#include "svc/recoverable.h"
#include "svc/serve_main.h"
#include "svc/sharded_engine.h"

namespace ltc {
namespace svc {
namespace {

io::EventLog MakeLog(std::int64_t tasks, std::int64_t workers,
                     std::uint64_t seed, double move_fraction = 0.0) {
  gen::StreamConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_workers = workers;
  cfg.move_fraction = move_fraction;
  cfg.seed = seed;
  auto log = gen::GenerateStreamEvents(cfg);
  log.status().CheckOK();
  return std::move(log).value();
}

StreamOptions BaseOptions(const std::string& algorithm, int shards) {
  StreamOptions options;
  options.algorithm = algorithm;
  options.batch_deadline = 0.5;
  options.shards = shards;
  options.threads = 1;
  options.seed = 7;
  // Durable runs fix the world up front (svc/recoverable.h); moves make
  // post-hoc validation inapplicable anyway (svc/stream_engine.h).
  options.world = geo::Rect{0.0, 0.0, 1000.0, 1000.0};
  options.validate = false;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = "/tmp/ltc_recovery_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

RecoverableService::Options ServiceOptions(const std::string& state_dir,
                                           const StreamOptions& stream,
                                           std::int64_t snapshot_every,
                                           std::int64_t group_commit) {
  RecoverableService::Options o;
  o.state_dir = state_dir;
  o.stream = stream;
  o.snapshot_every = snapshot_every;
  o.wal.group_commit = group_commit;
  o.wal.fsync = false;  // durability against power loss is not under test
  return o;
}

/// The golden: one uninterrupted durable run over the whole log.
std::string GoldenLog(const io::EventLog& log, const StreamOptions& options,
                      const std::string& dir_name) {
  auto service = RecoverableService::Open(
      log, ServiceOptions(FreshDir(dir_name), options, 0, 64));
  service.status().CheckOK();
  for (const io::Event& e : log.events) {
    service.value()->Ingest(e).CheckOK();
  }
  auto metrics = service.value()->Finish();
  metrics.status().CheckOK();
  return RenderAssignmentLog(options, service.value()->assignments(),
                             metrics.value());
}

struct SchedulerPoint {
  const char* algorithm;
  int shards;
};

const SchedulerPoint kSchedulerMatrix[] = {
    {"LAF", 1}, {"LAF", 4},    {"AAM", 1}, {"AAM", 4},
    {"Random", 1}, {"Random", 4}, {"MCF", 1}, {"MCF", 4},
};

// Satellite 4: Serialize → Restore → continue is assignment-identical to
// never snapshotting, for every online scheduler × shard count, at several
// cut points — the pure-engine core of the recovery contract (no WAL, no
// files, just the snapshot protocol).
TEST(SnapshotRoundTripTest, ContinuationMatchesUninterrupted) {
  const io::EventLog log = MakeLog(50, 1000, 11, /*move_fraction=*/0.15);
  const std::int64_t n = log.num_events();
  for (const SchedulerPoint& point : kSchedulerMatrix) {
    const StreamOptions options = BaseOptions(point.algorithm, point.shards);

    auto golden = ShardedStreamEngine::Create(log, options);
    golden.status().CheckOK();
    for (const io::Event& e : log.events) {
      golden.value()->OnEvent(e).CheckOK();
    }
    auto golden_metrics = golden.value()->Finish();
    golden_metrics.status().CheckOK();
    const std::string golden_log = RenderAssignmentLog(
        options, golden.value()->assignments(), golden_metrics.value());

    for (const std::int64_t cut : {n / 4, n / 2, (3 * n) / 4, n - 1}) {
      auto engine = ShardedStreamEngine::Create(log, options);
      engine.status().CheckOK();
      for (std::int64_t i = 0; i < cut; ++i) {
        engine.value()->OnEvent(log.events[static_cast<std::size_t>(i)])
            .CheckOK();
      }
      std::string state;
      engine.value()->SerializeTo(&state).CheckOK();

      auto restored = ShardedStreamEngine::Restore(log, options, state);
      ASSERT_TRUE(restored.ok())
          << point.algorithm << "@s" << point.shards << " cut " << cut
          << ": " << restored.status().ToString();
      // The snapshot bytes are themselves deterministic: re-serialising the
      // restored engine reproduces them.
      std::string state2;
      restored.value()->SerializeTo(&state2).CheckOK();
      EXPECT_EQ(state, state2)
          << point.algorithm << "@s" << point.shards << " cut " << cut;

      for (std::int64_t i = cut; i < n; ++i) {
        restored.value()->OnEvent(log.events[static_cast<std::size_t>(i)])
            .CheckOK();
      }
      auto metrics = restored.value()->Finish();
      metrics.status().CheckOK();
      const std::string continued = RenderAssignmentLog(
          options, restored.value()->assignments(), metrics.value());
      EXPECT_EQ(continued, golden_log)
          << point.algorithm << "@s" << point.shards << " cut " << cut;
    }
  }
}

// The acceptance sweep: >= 50 randomized crash points across schedulers ×
// shard counts. Each crash destroys the service mid-stream without Finish
// (dropping the WAL's unflushed group-commit window); the reopened service
// recovers, re-ingests the lost suffix from the source log, and must land
// on the golden byte-identical assignment log.
TEST(CrashRecoveryTest, RandomizedCrashPointsRecoverByteIdentical) {
  const io::EventLog log = MakeLog(50, 1000, 23, /*move_fraction=*/0.1);
  const std::int64_t n = log.num_events();
  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::int64_t> pick(1, n - 1);

  int crashes = 0;
  for (const SchedulerPoint& point : kSchedulerMatrix) {
    const StreamOptions options = BaseOptions(point.algorithm, point.shards);
    const std::string tag =
        std::string(point.algorithm) + "_s" + std::to_string(point.shards);
    const std::string golden = GoldenLog(log, options, "golden_" + tag);

    for (int rep = 0; rep < 7; ++rep) {
      const std::int64_t crash_at = pick(rng);
      const std::string dir =
          FreshDir("crash_" + tag + "_" + std::to_string(rep));
      // Snapshot and group-commit cadences deliberately small and co-prime,
      // so crash points land in every phase of both windows.
      const auto sopts = ServiceOptions(dir, options, 97, 16);
      {
        auto service = RecoverableService::Open(log, sopts);
        service.status().CheckOK();
        for (std::int64_t i = 0; i < crash_at; ++i) {
          service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
              .CheckOK();
        }
        // Crash: no Finish, no Close — the destructor drops the unflushed
        // WAL window (io/wal.h).
      }
      auto service = RecoverableService::Open(log, sopts);
      ASSERT_TRUE(service.ok()) << tag << " crash@" << crash_at << ": "
                                << service.status().ToString();
      const RecoverableService::RecoveryInfo& r = service.value()->recovery();
      EXPECT_TRUE(r.recovered);
      EXPECT_LE(r.wal_records, crash_at);
      EXPECT_EQ(service.value()->events_applied(), r.wal_records);
      for (std::int64_t i = service.value()->events_applied(); i < n; ++i) {
        service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
            .CheckOK();
      }
      auto metrics = service.value()->Finish();
      metrics.status().CheckOK();
      const std::string recovered_log = RenderAssignmentLog(
          options, service.value()->assignments(), metrics.value());
      EXPECT_EQ(recovered_log, golden) << tag << " crash@" << crash_at;
      ++crashes;
    }
  }
  EXPECT_GE(crashes, 50);
}

// The adaptive deadline's forecast state travels in the snapshot and the
// WAL replay re-derives the rest (DESIGN.md §13), so a crash-recovered
// adaptive service forecasts — and therefore flushes and assigns —
// byte-identically to an uninterrupted one.
TEST(CrashRecoveryTest, AdaptiveDeadlineRecoversByteIdentical) {
  gen::StreamConfig cfg;
  cfg.num_tasks = 50;
  cfg.num_workers = 1000;
  cfg.num_hotspots = 3;  // exercise extensions, not just quiet flushes
  cfg.seed = 29;
  auto generated = gen::GenerateStreamEvents(cfg);
  generated.status().CheckOK();
  const io::EventLog log = std::move(generated).value();
  const std::int64_t n = log.num_events();

  for (int shards : {1, 3}) {
    StreamOptions options = BaseOptions("LAF", shards);
    options.deadline_policy = DeadlinePolicy::kAdaptive;
    const std::string tag = "adaptive_s" + std::to_string(shards);
    const std::string golden = GoldenLog(log, options, "golden_" + tag);
    EXPECT_NE(golden.find("policy adaptive"), std::string::npos);

    for (const std::int64_t crash_at : {n / 3, n / 2, (4 * n) / 5}) {
      const std::string dir =
          FreshDir("crash_" + tag + "_" + std::to_string(crash_at));
      const auto sopts = ServiceOptions(dir, options, 97, 16);
      {
        auto service = RecoverableService::Open(log, sopts);
        service.status().CheckOK();
        for (std::int64_t i = 0; i < crash_at; ++i) {
          service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
              .CheckOK();
        }
        // Crash: destructor drops the unflushed group-commit window.
      }
      auto service = RecoverableService::Open(log, sopts);
      ASSERT_TRUE(service.ok()) << tag << " crash@" << crash_at << ": "
                                << service.status().ToString();
      EXPECT_TRUE(service.value()->recovery().recovered);
      for (std::int64_t i = service.value()->events_applied(); i < n; ++i) {
        service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
            .CheckOK();
      }
      auto metrics = service.value()->Finish();
      metrics.status().CheckOK();
      const std::string recovered_log = RenderAssignmentLog(
          options, service.value()->assignments(), metrics.value());
      EXPECT_EQ(recovered_log, golden) << tag << " crash@" << crash_at;
    }
  }
}

// A torn final WAL record (partial write at crash) is truncated on reopen;
// the stream continues to the golden log.
TEST(CrashRecoveryTest, TornWalTailIsTruncatedAndRecovered) {
  const io::EventLog log = MakeLog(30, 600, 31);
  const StreamOptions options = BaseOptions("LAF", 4);
  const std::string golden = GoldenLog(log, options, "torn_golden");

  const std::string dir = FreshDir("torn");
  const auto sopts = ServiceOptions(dir, options, 0, 8);
  const std::int64_t crash_at = log.num_events() / 2;
  {
    auto service = RecoverableService::Open(log, sopts);
    service.status().CheckOK();
    for (std::int64_t i = 0; i < crash_at; ++i) {
      service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
          .CheckOK();
    }
  }
  // Tear the tail: a record that lost the race with the crash.
  auto wal_text = io::ReadFile(dir + "/wal.events");
  wal_text.status().CheckOK();
  io::WriteFile(dir + "/wal.events", wal_text.value() + "w 3.25 41")
      .CheckOK();

  auto service = RecoverableService::Open(log, sopts);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(service.value()->recovery().wal_truncated_bytes, 9);
  for (std::int64_t i = service.value()->events_applied();
       i < log.num_events(); ++i) {
    service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
        .CheckOK();
  }
  auto metrics = service.value()->Finish();
  metrics.status().CheckOK();
  EXPECT_EQ(RenderAssignmentLog(options, service.value()->assignments(),
                                metrics.value()),
            golden);
}

/// Crashes a durable run at `crash_at`, lets `damage` vandalise the state
/// dir, then recovers, finishes the stream, and returns (recovery info,
/// final log).
template <typename DamageFn>
std::string DamagedRecoveryLog(const io::EventLog& log,
                               const StreamOptions& options,
                               const std::string& dir, DamageFn damage,
                               RecoverableService::RecoveryInfo* info) {
  const auto sopts = ServiceOptions(dir, options, 50, 8);
  {
    auto service = RecoverableService::Open(log, sopts);
    service.status().CheckOK();
    for (std::int64_t i = 0; i < (2 * log.num_events()) / 3; ++i) {
      service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
          .CheckOK();
    }
  }
  damage(dir + "/snapshots");
  auto service = RecoverableService::Open(log, sopts);
  service.status().CheckOK();
  *info = service.value()->recovery();
  for (std::int64_t i = service.value()->events_applied();
       i < log.num_events(); ++i) {
    service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
        .CheckOK();
  }
  auto metrics = service.value()->Finish();
  metrics.status().CheckOK();
  return RenderAssignmentLog(options, service.value()->assignments(),
                             metrics.value());
}

std::string NewestSnapshot(const std::string& snap_dir) {
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(snap_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    if (newest.empty() || name > newest) newest = name;
  }
  EXPECT_FALSE(newest.empty());
  return snap_dir + "/" + newest;
}

// A corrupt newest snapshot (CRC mismatch) is discarded; recovery falls
// back to an older snapshot or full WAL replay and still reaches golden.
TEST(CrashRecoveryTest, CorruptSnapshotIsDiscarded) {
  const io::EventLog log = MakeLog(30, 600, 37);
  const StreamOptions options = BaseOptions("AAM", 4);
  const std::string golden = GoldenLog(log, options, "corrupt_golden");

  RecoverableService::RecoveryInfo info;
  const std::string recovered = DamagedRecoveryLog(
      log, options, FreshDir("corrupt"),
      [](const std::string& snap_dir) {
        const std::string path = NewestSnapshot(snap_dir);
        auto text = io::ReadFile(path);
        text.status().CheckOK();
        std::string bytes = text.value();
        bytes[bytes.size() / 2] ^= 0x20;  // flip a bit mid-state
        io::WriteFile(path, bytes).CheckOK();
      },
      &info);
  EXPECT_GE(info.snapshots_discarded, 1);
  EXPECT_EQ(recovered, golden);
}

// A truncated snapshot (crash mid-write that somehow survived the atomic
// rename discipline) is likewise discarded.
TEST(CrashRecoveryTest, TruncatedSnapshotIsDiscarded) {
  const io::EventLog log = MakeLog(30, 600, 41);
  const StreamOptions options = BaseOptions("Random", 1);
  const std::string golden = GoldenLog(log, options, "truncsnap_golden");

  RecoverableService::RecoveryInfo info;
  const std::string recovered = DamagedRecoveryLog(
      log, options, FreshDir("truncsnap"),
      [](const std::string& snap_dir) {
        const std::string path = NewestSnapshot(snap_dir);
        auto text = io::ReadFile(path);
        text.status().CheckOK();
        io::WriteFile(path, text.value().substr(0, text.value().size() / 2))
            .CheckOK();
      },
      &info);
  EXPECT_GE(info.snapshots_discarded, 1);
  EXPECT_EQ(recovered, golden);
}

// A snapshot that claims more events than the WAL durably holds (here:
// the WAL lost records after the snapshot landed) must not be trusted —
// recovery discards it rather than continuing from a future the WAL
// cannot replay.
TEST(CrashRecoveryTest, SnapshotAheadOfWalIsDiscarded) {
  const io::EventLog log = MakeLog(30, 600, 43);
  const StreamOptions options = BaseOptions("LAF", 1);
  const std::string dir = FreshDir("ahead");
  const auto sopts = ServiceOptions(dir, options, 0, 8);
  const std::int64_t ingested = log.num_events() / 2;
  {
    auto service = RecoverableService::Open(log, sopts);
    service.status().CheckOK();
    for (std::int64_t i = 0; i < ingested; ++i) {
      service.value()->Ingest(log.events[static_cast<std::size_t>(i)])
          .CheckOK();
    }
    // Checkpoint at `ingested`, then chop whole records off the WAL tail.
    service.value()->Checkpoint().CheckOK();
  }
  auto wal_text = io::ReadFile(dir + "/wal.events");
  wal_text.status().CheckOK();
  std::string chopped = wal_text.value();
  chopped.pop_back();  // drop the trailing '\n' so each rfind removes a record
  for (int i = 0; i < 5; ++i) {
    chopped.resize(chopped.rfind('\n'));
  }
  chopped += '\n';
  io::WriteFile(dir + "/wal.events", chopped).CheckOK();

  auto service = RecoverableService::Open(log, sopts);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const RecoverableService::RecoveryInfo& r = service.value()->recovery();
  EXPECT_GE(r.snapshots_discarded, 1);
  EXPECT_EQ(service.value()->events_applied(), ingested - 5);
  EXPECT_EQ(r.snapshot_events, 0);  // full WAL replay
}

// Armed fault points turn WAL and ingest sites into surfaced IOErrors
// instead of silent corruption.
TEST(FaultInjectionTest, WalAndIngestFaultsSurface) {
  const io::EventLog log = MakeLog(10, 100, 47);
  const StreamOptions options = BaseOptions("LAF", 1);

  FaultPoints::Instance().Reset();
  FaultPoints::Instance().Arm("wal.append", 3, "fail");
  {
    auto service = RecoverableService::Open(
        log, ServiceOptions(FreshDir("fault_append"), options, 0, 1));
    service.status().CheckOK();
    Status status = Status::OK();
    std::int64_t applied_before_failure = 0;
    for (const io::Event& e : log.events) {
      status = service.value()->Ingest(e);
      if (!status.ok()) break;
      ++applied_before_failure;
    }
    EXPECT_TRUE(status.IsIOError()) << status.ToString();
    EXPECT_NE(status.ToString().find("injected"), std::string::npos);
    EXPECT_EQ(applied_before_failure, 2);
    // WAL-first ordering: the failed event never reached the engine.
    EXPECT_EQ(service.value()->events_applied(), 2);
  }

  FaultPoints::Instance().Reset();
  FaultPoints::Instance().Arm("svc.ingest", 2, "fail");
  {
    auto service = RecoverableService::Open(
        log, ServiceOptions(FreshDir("fault_ingest"), options, 0, 1));
    service.status().CheckOK();
    EXPECT_TRUE(service.value()->Ingest(log.events[0]).ok());
    const Status status = service.value()->Ingest(log.events[1]);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("injected"), std::string::npos);
  }
  FaultPoints::Instance().Reset();
}

// The fsync fault point, exercised with fsync actually enabled.
TEST(FaultInjectionTest, FsyncFaultSurfacesWhenFsyncEnabled) {
  const io::EventLog log = MakeLog(10, 100, 53);
  const StreamOptions options = BaseOptions("LAF", 1);
  RecoverableService::Options sopts =
      ServiceOptions(FreshDir("fault_fsync_on"), options, 0, 1);
  sopts.wal.fsync = true;

  FaultPoints::Instance().Reset();
  auto service = RecoverableService::Open(log, sopts);
  service.status().CheckOK();
  // Arm after Open: Create durably fsyncs the WAL header, which would
  // otherwise consume the countdown before the first ingest.
  FaultPoints::Instance().Arm("wal.fsync", 1, "fail");
  const Status status = service.value()->Ingest(log.events[0]);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_NE(status.ToString().find("injected"), std::string::npos);
  FaultPoints::Instance().Reset();
}

// RunDurableService end to end: fresh run, then a re-run over the same
// state dir (full recovery, zero re-ingest) must reproduce the log.
TEST(DurableServeTest, RerunOverRecoveredStateIsIdentical) {
  const io::EventLog log = MakeLog(20, 400, 59);
  const StreamOptions options = BaseOptions("MCF", 4);
  DurableConfig dcfg;
  dcfg.state_dir = FreshDir("durable_rerun");
  dcfg.snapshot_every = 100;
  dcfg.wal.fsync = false;

  auto first = RunDurableService(log, options, dcfg);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().recovery.recovered);

  auto second = RunDurableService(log, options, dcfg);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.value().recovery.recovered);
  EXPECT_EQ(second.value().recovery.replayed, 0);
  EXPECT_EQ(second.value().assignment_log, first.value().assignment_log);
}

// Restoring into a different topology is refused loudly instead of
// silently rerouting the stream.
TEST(DurableServeTest, TopologyMismatchIsRejected) {
  const io::EventLog log = MakeLog(10, 100, 61);
  const StreamOptions options = BaseOptions("LAF", 2);
  auto engine = ShardedStreamEngine::Create(log, options);
  engine.status().CheckOK();
  for (const io::Event& e : log.events) {
    engine.value()->OnEvent(e).CheckOK();
  }
  std::string state;
  engine.value()->SerializeTo(&state).CheckOK();

  StreamOptions other = options;
  other.shards = 3;
  const auto restored = ShardedStreamEngine::Restore(log, other, state);
  EXPECT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("topology"), std::string::npos);
}

}  // namespace
}  // namespace svc
}  // namespace ltc
