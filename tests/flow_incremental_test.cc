// Differential harness for the warm-start incremental MCF solver.
//
// Every test drives an IncrementalMcmf (and, in the randomized sequences, a
// second instance with warm starts disabled) through a delta sequence while a
// plain mirror records the live problem: left supplies, right demand totals,
// and the (left, right, capacity, cost) of every live arc. After each Solve
// the mirror is compiled into the classic st/ed formulation and handed to the
// from-scratch SSP solver — reference flow value, total cost, per-arc flows,
// conservation, and capacity bounds must all match the incremental state.
// Costs are drawn wide (|cost| up to 1e9) so optima are unique in practice
// and per-arc comparison is meaningful; seeds are pinned, so a sequence that
// passes once passes forever.
//
// Sequence shapes follow the streaming regimes the harness exists for
// (PAPERS.md: batched assignment under skewed, continuously-arriving
// streams): a Poisson-style uniform instance and a hotspot instance where a
// Zipf-skewed handful of rights receives most arcs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "flow/graph.h"
#include "flow/min_cost_flow.h"

namespace ltc {
namespace flow {
namespace {

struct MirrorArc {
  NodeId left = -1;
  NodeId right = -1;
  std::int64_t capacity = 0;
  std::int64_t cost = 0;
  bool alive = false;
};

struct MirrorNode {
  char kind = 0;  // 0 free, 1 left, 2 right
  std::int64_t supply = 0;  // lefts
  std::int64_t demand = 0;  // rights: live wanted total (deficit + inflow)
};

/// Drives N IncrementalMcmf instances through one delta sequence and checks
/// them against a mirror-built from-scratch reference after every Solve.
class Differential {
 public:
  explicit Differential(std::vector<IncrementalMcmfOptions> variants) {
    for (const auto& options : variants) solvers_.emplace_back(options);
  }

  IncrementalMcmf& primary() { return solvers_.front(); }

  NodeId AddLeft(std::int64_t supply) {
    NodeId id = -1;
    for (auto& s : solvers_) id = s.AddLeft(supply);
    if (static_cast<std::size_t>(id) >= nodes_.size()) {
      nodes_.resize(static_cast<std::size_t>(id) + 1);
    }
    nodes_[static_cast<std::size_t>(id)] = MirrorNode{1, supply, 0};
    lefts_.push_back(id);
    return id;
  }

  NodeId AddRight(std::int64_t deficit) {
    NodeId id = -1;
    for (auto& s : solvers_) id = s.AddRight(deficit);
    if (static_cast<std::size_t>(id) >= nodes_.size()) {
      nodes_.resize(static_cast<std::size_t>(id) + 1);
    }
    nodes_[static_cast<std::size_t>(id)] = MirrorNode{2, 0, deficit};
    rights_.push_back(id);
    return id;
  }

  ArcId AddArc(NodeId left, NodeId right, std::int64_t capacity,
               std::int64_t cost) {
    ArcId id = -1;
    for (auto& s : solvers_) {
      auto r = s.AddArc(left, right, capacity, cost);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      id = *r;
    }
    if (static_cast<std::size_t>(id) >= arcs_.size()) {
      arcs_.resize(static_cast<std::size_t>(id) + 1);
    }
    arcs_[static_cast<std::size_t>(id)] =
        MirrorArc{left, right, capacity, cost, true};
    return id;
  }

  void RemoveArc(ArcId arc) {
    for (auto& s : solvers_) {
      const auto status = s.RemoveArc(arc);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    arcs_[static_cast<std::size_t>(arc)].alive = false;
  }

  void SetArcCapacity(ArcId arc, std::int64_t capacity) {
    for (auto& s : solvers_) {
      const auto status = s.SetArcCapacity(arc, capacity);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    arcs_[static_cast<std::size_t>(arc)].capacity = capacity;
  }

  void SetSupply(NodeId left, std::int64_t supply) {
    for (auto& s : solvers_) {
      const auto status = s.SetSupply(left, supply);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    nodes_[static_cast<std::size_t>(left)].supply = supply;
  }

  void SetDeficit(NodeId right, std::int64_t deficit) {
    // The live total becomes deficit + inflow; inflow is read off the
    // primary's per-arc flows, which the previous CheckAgainstReference
    // verified optimal (all solvers agree on them).
    nodes_[static_cast<std::size_t>(right)].demand = deficit + Inflow(right);
    for (auto& s : solvers_) {
      const auto status = s.SetDeficit(right, deficit);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }

  void RetireLeft(NodeId left, IncrementalMcmf::RetireMode mode) {
    if (mode == IncrementalMcmf::RetireMode::kFreeze) {
      // Frozen units leave the live problem for good: shrink the demand
      // totals by what this left had delivered (verified optimal flows).
      for (std::size_t a = 0; a < arcs_.size(); ++a) {
        if (!arcs_[a].alive || arcs_[a].left != left) continue;
        nodes_[static_cast<std::size_t>(arcs_[a].right)].demand -=
            primary().ArcFlow(static_cast<ArcId>(a));
      }
    }
    for (auto& s : solvers_) {
      const auto status = s.RetireLeft(left, mode);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    for (auto& arc : arcs_) {
      if (arc.alive && arc.left == left) arc.alive = false;
    }
    nodes_[static_cast<std::size_t>(left)].kind = 0;
    lefts_.erase(std::find(lefts_.begin(), lefts_.end(), left));
  }

  void SolveAndCheck() {
    for (auto& s : solvers_) {
      const auto r = s.Solve();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    CheckAgainstReference();
  }

  const std::vector<NodeId>& lefts() const { return lefts_; }
  const std::vector<NodeId>& rights() const { return rights_; }
  std::vector<ArcId> AliveArcs() const {
    std::vector<ArcId> out;
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (arcs_[a].alive) out.push_back(static_cast<ArcId>(a));
    }
    return out;
  }
  const MirrorArc& arc(ArcId a) const {
    return arcs_[static_cast<std::size_t>(a)];
  }
  const MirrorNode& node(NodeId v) const {
    return nodes_[static_cast<std::size_t>(v)];
  }

 private:
  std::int64_t Inflow(NodeId right) const {
    std::int64_t inflow = 0;
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (arcs_[a].alive && arcs_[a].right == right) {
        // primary() is non-const only because ArcFlow is const on solvers_.
        inflow += solvers_.front().ArcFlow(static_cast<ArcId>(a));
      }
    }
    return inflow;
  }

  /// Compiles the mirror into st/ed form, solves from scratch (SPFA-seeded
  /// SSP — a different code path from the incremental solver), and compares.
  void CheckAgainstReference() {
    std::vector<NodeId> ref_of(nodes_.size(), -1);
    NodeId next = 1;  // 0 = st
    for (const NodeId l : lefts_) ref_of[static_cast<std::size_t>(l)] = next++;
    for (const NodeId r : rights_) {
      if (nodes_[static_cast<std::size_t>(r)].kind == 2) {
        ref_of[static_cast<std::size_t>(r)] = next++;
      }
    }
    const NodeId ed = next;
    FlowNetworkBuilder builder(ed + 1);
    for (const NodeId l : lefts_) {
      const auto& n = nodes_[static_cast<std::size_t>(l)];
      if (n.supply > 0) {
        ASSERT_TRUE(
            builder.AddArc(0, ref_of[static_cast<std::size_t>(l)], n.supply, 0)
                .ok());
      }
    }
    std::vector<ArcId> ref_arc_of(arcs_.size(), -1);
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (!arcs_[a].alive) continue;
      auto r = builder.AddArc(ref_of[static_cast<std::size_t>(arcs_[a].left)],
                              ref_of[static_cast<std::size_t>(arcs_[a].right)],
                              arcs_[a].capacity, arcs_[a].cost);
      ASSERT_TRUE(r.ok());
      ref_arc_of[a] = *r;
    }
    for (const NodeId r : rights_) {
      const auto& n = nodes_[static_cast<std::size_t>(r)];
      if (n.demand > 0) {
        ASSERT_TRUE(
            builder.AddArc(ref_of[static_cast<std::size_t>(r)], ed, n.demand, 0)
                .ok());
      }
    }
    FlowNetwork net;
    builder.Build(&net);
    const auto ref = SspMinCostMaxFlow(&net, 0, ed);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    for (auto& s : solvers_) {
      EXPECT_EQ(s.TotalFlow(), ref->flow);
      EXPECT_EQ(s.TotalCost(), ref->cost);
      // Per-arc flows (the extracted assignments): identical to from-scratch
      // under the unique optima the wide random costs give us.
      for (std::size_t a = 0; a < arcs_.size(); ++a) {
        if (!arcs_[a].alive) continue;
        const std::int64_t flow = s.ArcFlow(static_cast<ArcId>(a));
        EXPECT_EQ(flow, net.Flow(ref_arc_of[a]))
            << "arc " << a << " (" << arcs_[a].left << " -> "
            << arcs_[a].right << ")";
        EXPECT_GE(flow, 0);
        EXPECT_LE(flow, arcs_[a].capacity);
      }
      // Conservation at the lefts: sent == supply - excess, never above
      // supply; and at the rights: deficit accounts for every unit received.
      for (const NodeId l : lefts_) {
        std::int64_t sent = 0;
        for (std::size_t a = 0; a < arcs_.size(); ++a) {
          if (arcs_[a].alive && arcs_[a].left == l) {
            sent += s.ArcFlow(static_cast<ArcId>(a));
          }
        }
        const auto& n = nodes_[static_cast<std::size_t>(l)];
        EXPECT_EQ(sent, n.supply - s.Excess(l));
        EXPECT_LE(sent, n.supply);
      }
      for (const NodeId r : rights_) {
        std::int64_t received = 0;
        for (std::size_t a = 0; a < arcs_.size(); ++a) {
          if (arcs_[a].alive && arcs_[a].right == r) {
            received += s.ArcFlow(static_cast<ArcId>(a));
          }
        }
        EXPECT_EQ(s.Deficit(r),
                  nodes_[static_cast<std::size_t>(r)].demand - received);
      }
    }
  }

  std::vector<IncrementalMcmf> solvers_;
  std::vector<MirrorNode> nodes_;
  std::vector<MirrorArc> arcs_;
  std::vector<NodeId> lefts_;   // live, in insertion order
  std::vector<NodeId> rights_;  // ever added (kind marks liveness)
};

std::vector<IncrementalMcmfOptions> WarmAndCold() {
  IncrementalMcmfOptions warm;
  warm.warm_start = true;
  warm.drift_check_every = 3;  // exercise the internal check on the way
  IncrementalMcmfOptions cold;
  cold.warm_start = false;
  return {warm, cold};
}

std::int64_t WideCost(Rng* rng) {
  return rng->UniformInt(-1'000'000'000, 1'000'000'000);
}

/// One randomized sequence: grow an instance batch by batch, interleaving
/// inserts, removals, capacity changes, supply/deficit rewrites, and
/// retirements with Solve+check steps. `hotspot` skews arc targets.
void RunSequence(std::uint64_t seed, bool hotspot) {
  SCOPED_TRACE(testing::Message() << "seed=" << seed
                                  << " hotspot=" << hotspot);
  Rng rng(seed);
  Differential d(WarmAndCold());

  const int batches = static_cast<int>(rng.UniformInt(3, 6));
  for (int batch = 0; batch < batches; ++batch) {
    // Arrivals: a few rights, then a few lefts wired to random rights.
    const int new_rights = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < new_rights; ++i) {
      d.AddRight(rng.UniformInt(1, 5));
    }
    const int new_lefts = static_cast<int>(rng.UniformInt(2, 5));
    for (int i = 0; i < new_lefts; ++i) {
      const NodeId l = d.AddLeft(rng.UniformInt(1, 3));
      const auto& rights = d.rights();
      const int degree = static_cast<int>(
          rng.UniformInt(1, static_cast<std::int64_t>(rights.size())));
      for (int k = 0; k < degree; ++k) {
        const auto pick = static_cast<std::size_t>(
            hotspot ? rng.Zipf(static_cast<std::int64_t>(rights.size()), 1.2)
                    : rng.UniformInt(
                          0, static_cast<std::int64_t>(rights.size()) - 1));
        d.AddArc(l, rights[pick], rng.UniformInt(1, 3), WideCost(&rng));
      }
    }
    d.SolveAndCheck();

    // Departures / moves: mutate the solved state, then re-solve.
    const int mutations = static_cast<int>(rng.UniformInt(1, 5));
    for (int m = 0; m < mutations; ++m) {
      const auto alive = d.AliveArcs();
      switch (rng.UniformInt(0, 5)) {
        case 0: {  // arc removal
          if (alive.empty()) break;
          d.RemoveArc(alive[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(alive.size()) - 1))]);
          break;
        }
        case 1: {  // capacity change (shrink-below-flow and growth alike)
          if (alive.empty()) break;
          const ArcId a = alive[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(alive.size()) - 1))];
          d.SetArcCapacity(a, rng.UniformInt(0, 4));
          break;
        }
        case 2: {  // new arc between existing nodes (a "move")
          if (d.lefts().empty()) break;
          const NodeId l = d.lefts()[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(d.lefts().size()) - 1))];
          const auto& rights = d.rights();
          const NodeId r = rights[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(rights.size()) - 1))];
          d.AddArc(l, r, rng.UniformInt(1, 3), WideCost(&rng));
          break;
        }
        case 3: {  // supply rewrite (both directions)
          if (d.lefts().empty()) break;
          const NodeId l = d.lefts()[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(d.lefts().size()) - 1))];
          d.SetSupply(l, rng.UniformInt(0, 4));
          break;
        }
        case 4: {  // deficit rewrite (task progress / reopening)
          const auto& rights = d.rights();
          const NodeId r = rights[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(rights.size()) - 1))];
          d.SetDeficit(r, rng.UniformInt(0, 5));
          break;
        }
        default: {  // departure
          if (d.lefts().size() <= 1) break;
          const NodeId l = d.lefts()[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(d.lefts().size()) - 1))];
          d.RetireLeft(l, rng.Bernoulli(0.5)
                              ? IncrementalMcmf::RetireMode::kFreeze
                              : IncrementalMcmf::RetireMode::kCancel);
          break;
        }
      }
    }
    d.SolveAndCheck();
  }
}

TEST(FlowIncrementalDifferentialTest, PoissonSequences) {
  for (std::uint64_t seed = 0; seed < 110; ++seed) RunSequence(seed, false);
}

TEST(FlowIncrementalDifferentialTest, HotspotSequences) {
  for (std::uint64_t seed = 1000; seed < 1110; ++seed) RunSequence(seed, true);
}

// --- Directed regressions ---

TEST(FlowIncrementalTest, EmptyDeltaResolveIsWarmAndExact) {
  Differential d(WarmAndCold());
  const NodeId r0 = d.AddRight(2);
  const NodeId r1 = d.AddRight(1);
  const NodeId l0 = d.AddLeft(2);
  const NodeId l1 = d.AddLeft(1);
  d.AddArc(l0, r0, 1, -500);
  d.AddArc(l0, r1, 1, -300);
  d.AddArc(l1, r0, 1, -400);
  d.SolveAndCheck();
  // No deltas: the warm re-solve must push nothing and stay warm.
  auto& warm = d.primary();
  const auto again = warm.Solve();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->flow, 0);
  EXPECT_EQ(again->iterations, 0);
  EXPECT_FALSE(warm.last_solve_cold());
  d.SolveAndCheck();  // and the cold twin still agrees
}

TEST(FlowIncrementalTest, AllRemovedThenRebuilt) {
  Differential d(WarmAndCold());
  const NodeId r0 = d.AddRight(3);
  const NodeId r1 = d.AddRight(2);
  const NodeId l0 = d.AddLeft(2);
  const NodeId l1 = d.AddLeft(2);
  const ArcId a0 = d.AddArc(l0, r0, 2, -700);
  const ArcId a1 = d.AddArc(l0, r1, 1, -200);
  const ArcId a2 = d.AddArc(l1, r0, 1, -900);
  d.SolveAndCheck();
  EXPECT_GT(d.primary().TotalFlow(), 0);
  // Remove every arc: the network empties and all flow is cancelled.
  d.RemoveArc(a0);
  d.RemoveArc(a1);
  d.RemoveArc(a2);
  d.SolveAndCheck();
  EXPECT_EQ(d.primary().TotalFlow(), 0);
  EXPECT_EQ(d.primary().TotalCost(), 0);
  EXPECT_EQ(d.primary().Deficit(r0), 3);
  EXPECT_EQ(d.primary().Deficit(r1), 2);
  // Rebuild on the emptied instance; ids and warm state must still work.
  d.AddArc(l0, r1, 2, -650);
  d.AddArc(l1, r0, 2, -150);
  d.SolveAndCheck();
  EXPECT_GT(d.primary().TotalFlow(), 0);
}

TEST(FlowIncrementalTest, FreezeRemovesDeliveredUnitsFromLiveProblem) {
  IncrementalMcmf incr;
  const NodeId r = incr.AddRight(2);
  const NodeId l = incr.AddLeft(1);
  ASSERT_TRUE(incr.AddArc(l, r, 1, -100).ok());
  ASSERT_TRUE(incr.Solve().ok());
  EXPECT_EQ(incr.TotalFlow(), 1);
  EXPECT_EQ(incr.Deficit(r), 1);
  ASSERT_TRUE(incr.RetireLeft(l, IncrementalMcmf::RetireMode::kFreeze).ok());
  EXPECT_EQ(incr.Consumed(r), 1);
  EXPECT_EQ(incr.Deficit(r), 1);  // the delivered unit does not reopen
  EXPECT_EQ(incr.TotalFlow(), 0);
  const NodeId l2 = incr.AddLeft(5);
  ASSERT_TRUE(incr.AddArc(l2, r, 5, -50).ok());
  ASSERT_TRUE(incr.Solve().ok());
  EXPECT_EQ(incr.TotalFlow(), 1);  // only the reopened unit is wanted
}

TEST(FlowIncrementalTest, WarmSolvesAreActuallyWarm) {
  IncrementalMcmfOptions options;
  options.warm_start = true;
  IncrementalMcmf incr(options);
  Rng rng(7);
  std::vector<NodeId> rights;
  for (int i = 0; i < 8; ++i) rights.push_back(incr.AddRight(3));
  // The batch-pipeline shape McfLtc uses: each round brings fresh lefts,
  // solves, then retires them with kFreeze (deliveries become permanent,
  // deficits shrink). No left ever carries flow into the next solve and no
  // right keeps live inflow, so the feasibility scan always passes.
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<NodeId> lefts;
    for (int i = 0; i < 4; ++i) {
      const NodeId l = incr.AddLeft(2);
      lefts.push_back(l);
      for (int k = 0; k < 3; ++k) {
        const auto pick = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(rights.size()) - 1));
        ASSERT_TRUE(
            incr.AddArc(l, rights[pick], 1, WideCost(&rng)).ok());
      }
    }
    ASSERT_TRUE(incr.Solve().ok());
    for (const NodeId l : lefts) {
      ASSERT_TRUE(incr.RetireLeft(l, IncrementalMcmf::RetireMode::kFreeze).ok());
    }
  }
  EXPECT_EQ(incr.num_solves(), 5);
  // Only the very first solve may run cold in this pattern.
  EXPECT_LE(incr.num_cold_solves(), 1);
  EXPECT_FALSE(incr.last_solve_cold());
}

TEST(FlowIncrementalTest, WarmStartOffForcesColdEverySolve) {
  IncrementalMcmfOptions options;
  options.warm_start = false;
  IncrementalMcmf incr(options);
  const NodeId r = incr.AddRight(4);
  for (int i = 0; i < 3; ++i) {
    const NodeId l = incr.AddLeft(1);
    ASSERT_TRUE(incr.AddArc(l, r, 1, -10 * (i + 1)).ok());
    ASSERT_TRUE(incr.Solve().ok());
    EXPECT_TRUE(incr.last_solve_cold());
  }
  EXPECT_EQ(incr.num_cold_solves(), 3);
}

TEST(FlowIncrementalDriftDeathTest, CorruptedFlowFailsTheDriftCheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  IncrementalMcmfOptions options;
  options.warm_start = true;
  options.drift_check_every = 1;
  IncrementalMcmf incr(options);
  const NodeId r = incr.AddRight(3);
  const NodeId l = incr.AddLeft(1);
  // cap 2 > supply 1 leaves forward residual for the corrupting push.
  ASSERT_TRUE(incr.AddArc(l, r, 2, -100).ok());
  ASSERT_TRUE(incr.Solve().ok());  // drift check passes on the honest state
  incr.TestOnlyCorruptFlow();
  // Re-solve with no deltas: stays warm (nothing perturbs the duals), so the
  // smuggled flow unit survives to the next drift check and trips it.
  EXPECT_DEATH((void)incr.Solve(), "drifted");
}

}  // namespace
}  // namespace flow
}  // namespace ltc
