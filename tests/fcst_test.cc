// Tests of the fcst layer (DESIGN.md §13): geo::CellGrid geometry, the
// per-cell EWMA rate estimator's convergence on a stationary Poisson
// process, its exponential decay on quiet cells, clamping of backwards
// timestamps, and the bit-exact snapshot round-trip the recovery
// determinism contract depends on.

#include <cmath>
#include <string>

#include "common/random.h"
#include "fcst/arrival_forecast.h"
#include "geo/cell_grid.h"
#include "gtest/gtest.h"

namespace ltc {
namespace fcst {
namespace {

CellRateEstimator::Config GridConfig(double side, double cell_size,
                                     double horizon = 8.0) {
  CellRateEstimator::Config config;
  config.grid = geo::CellGrid(geo::Rect{0.0, 0.0, side, side}, cell_size);
  config.horizon = horizon;
  return config;
}

TEST(CellGridTest, GeometryAndClamping) {
  const geo::CellGrid grid(geo::Rect{0.0, 0.0, 100.0, 50.0}, 10.0);
  EXPECT_EQ(grid.cells_x(), 10);
  EXPECT_EQ(grid.cells_y(), 5);
  EXPECT_EQ(grid.num_cells(), 50);

  EXPECT_EQ(grid.CellOf({0.0, 0.0}), 0);
  EXPECT_EQ(grid.CellOf({15.0, 0.0}), 1);
  EXPECT_EQ(grid.CellOf({0.0, 15.0}), grid.cells_x());
  // Out-of-bounds points clamp into boundary cells, like geo::GridIndex.
  EXPECT_EQ(grid.CellOf({-40.0, -40.0}), 0);
  EXPECT_EQ(grid.CellOf({1e9, 1e9}), grid.num_cells() - 1);

  // The default grid is a single world-spanning cell.
  const geo::CellGrid whole;
  EXPECT_EQ(whole.num_cells(), 1);
  EXPECT_EQ(whole.CellOf({123.0, -456.0}), 0);
}

TEST(CellRateEstimatorTest, RejectsBadConfig) {
  CellRateEstimator::Config config = GridConfig(100.0, 10.0);
  config.horizon = 0.0;
  EXPECT_TRUE(CellRateEstimator::Create(config).status().IsInvalidArgument());
  config.horizon = -1.0;
  EXPECT_TRUE(CellRateEstimator::Create(config).status().IsInvalidArgument());
}

TEST(CellRateEstimatorTest, UntouchedCellsReadZero) {
  auto estimator = CellRateEstimator::Create(GridConfig(100.0, 10.0));
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(estimator.value().WorkerRate({5.0, 5.0}, 10.0), 0.0);
  EXPECT_EQ(estimator.value().TaskRate({5.0, 5.0}, 10.0), 0.0);
  EXPECT_EQ(estimator.value().events(), 0);
}

// On a stationary Poisson process of intensity lambda, the continuous-time
// EWMA converges to lambda in expectation (each arrival adds 1/tau and
// decays with time constant tau). After many horizons of warm-up, a single
// trajectory's estimate must sit near lambda — the estimator the adaptive
// deadline wagers on.
TEST(CellRateEstimatorTest, ConvergesToPoissonRate) {
  const double lambda = 5.0;
  const double tau = 8.0;
  auto estimator = CellRateEstimator::Create(GridConfig(1.0, 1.0, tau));
  ASSERT_TRUE(estimator.ok());

  Rng rng(2024);
  double t = 0.0;
  while (t < 60.0 * tau) {
    t += rng.Exponential(lambda);
    estimator.value().OnWorkerArrival({0.5, 0.5}, t);
  }
  const double estimate = estimator.value().WorkerRate({0.5, 0.5}, t);
  EXPECT_NEAR(estimate, lambda, 0.3 * lambda)
      << "EWMA did not converge to the Poisson rate";
}

TEST(CellRateEstimatorTest, QuietCellsDecayExponentially) {
  const double tau = 4.0;
  auto created = CellRateEstimator::Create(GridConfig(100.0, 10.0, tau));
  ASSERT_TRUE(created.ok());
  CellRateEstimator& estimator = created.value();

  estimator.OnWorkerArrival({5.0, 5.0}, 0.0);
  const double initial = estimator.WorkerRate({5.0, 5.0}, 0.0);
  EXPECT_DOUBLE_EQ(initial, 1.0 / tau);
  // One, two, three time constants of silence.
  for (int k = 1; k <= 3; ++k) {
    EXPECT_NEAR(estimator.WorkerRate({5.0, 5.0}, k * tau),
                initial * std::exp(-k), 1e-12);
  }
  // Worker arrivals do not bleed into the task rate (or into other cells).
  EXPECT_EQ(estimator.TaskRate({5.0, 5.0}, 1.0), 0.0);
  EXPECT_EQ(estimator.WorkerRate({55.0, 55.0}, 1.0), 0.0);
}

TEST(CellRateEstimatorTest, BackwardsQueriesNeverAmplify) {
  auto created = CellRateEstimator::Create(GridConfig(100.0, 10.0));
  ASSERT_TRUE(created.ok());
  CellRateEstimator& estimator = created.value();
  estimator.OnWorkerArrival({5.0, 5.0}, 10.0);
  // A query before the last update clamps decay at 1, never > 1.
  EXPECT_DOUBLE_EQ(estimator.WorkerRate({5.0, 5.0}, 5.0),
                   estimator.WorkerRate({5.0, 5.0}, 10.0));
}

// The recovery contract: restoring a serialized estimator must reproduce
// every future rate — and every future flush decision — bit-exactly, so
// the blob carries %.17g doubles and the round-trip is byte-stable.
TEST(CellRateEstimatorTest, SnapshotRoundTripIsBitExact) {
  auto created = CellRateEstimator::Create(GridConfig(100.0, 10.0));
  ASSERT_TRUE(created.ok());
  CellRateEstimator& estimator = created.value();

  Rng rng(7);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.Exponential(20.0);
    const geo::Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    if (rng.Bernoulli(0.8)) {
      estimator.OnWorkerArrival(p, t);
    } else {
      estimator.OnTaskArrival(p, t);
    }
  }

  std::string blob;
  ASSERT_TRUE(estimator.SerializeTo(&blob).ok());

  auto restored = CellRateEstimator::Create(GridConfig(100.0, 10.0));
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored.value().RestoreFrom(blob).ok());
  EXPECT_EQ(restored.value().events(), estimator.events());

  for (int i = 0; i < 50; ++i) {
    const geo::Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    EXPECT_EQ(restored.value().WorkerRate(p, t + 1.0),
              estimator.WorkerRate(p, t + 1.0));
    EXPECT_EQ(restored.value().TaskRate(p, t + 1.0),
              estimator.TaskRate(p, t + 1.0));
  }
  std::string blob2;
  ASSERT_TRUE(restored.value().SerializeTo(&blob2).ok());
  EXPECT_EQ(blob, blob2);

  // A geometry mismatch is rejected, not silently misread.
  auto mismatched = CellRateEstimator::Create(GridConfig(100.0, 25.0));
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(mismatched.value().RestoreFrom(blob).ok());
}

TEST(CellRateEstimatorTest, CellRatesListsTouchedCellsAscending) {
  auto created = CellRateEstimator::Create(GridConfig(100.0, 10.0));
  ASSERT_TRUE(created.ok());
  CellRateEstimator& estimator = created.value();
  estimator.OnWorkerArrival({95.0, 95.0}, 1.0);
  estimator.OnTaskArrival({5.0, 5.0}, 2.0);
  estimator.OnWorkerArrival({5.0, 5.0}, 3.0);

  std::vector<CellRate> rates;
  estimator.CellRates(3.0, &rates);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_LT(rates[0].cell, rates[1].cell);
  EXPECT_GT(rates[0].worker_rate, 0.0);
  EXPECT_GT(rates[0].task_rate, 0.0);
  EXPECT_GT(rates[1].worker_rate, 0.0);
  EXPECT_EQ(rates[1].task_rate, 0.0);
}

}  // namespace
}  // namespace fcst
}  // namespace ltc
