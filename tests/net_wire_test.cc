// Tests for the ltc-wire v1 framing codec and the loopback socket ingest
// path: frame encode/decode (including hostile byte streams), ack and
// events payload codecs, and an in-process IngestServer driven by
// IngestClient over a Unix-domain socket — admission monotonicity,
// all-or-nothing rejection, backpressure, stats, finish-drain, and the
// stop-flag graceful drain.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gen/stream.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "svc/recoverable.h"
#include "svc/serve_main.h"

namespace ltc {
namespace net {
namespace {

io::Event TaskEvent(double time, double x, double y) {
  io::Event e;
  e.kind = io::Event::Kind::kTaskArrival;
  e.time = time;
  e.location = geo::Point{x, y};
  return e;
}

io::Event WorkerEvent(double time, double x, double y, double acc) {
  io::Event e;
  e.kind = io::Event::Kind::kWorkerArrival;
  e.time = time;
  e.location = geo::Point{x, y};
  e.accuracy = acc;
  return e;
}

TEST(FrameCodecTest, RoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kEvents, FrameType::kFinish,
        FrameType::kAck, FrameType::kStats}) {
    Frame in;
    in.type = type;
    in.payload = "some payload \n with bytes \x01\x02";
    const std::string wire = EncodeFrame(in);

    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    Frame out;
    auto complete = decoder.Next(&out);
    ASSERT_TRUE(complete.ok()) << complete.status().ToString();
    ASSERT_TRUE(complete.value());
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.payload, in.payload);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(FrameCodecTest, DecodesByteByByteAndBackToBack) {
  Frame a;
  a.type = FrameType::kEvents;
  a.payload = "t 0 1 2\n";
  Frame b;
  b.type = FrameType::kFinish;
  const std::string wire = EncodeFrame(a) + EncodeFrame(b);

  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (const char c : wire) {
    decoder.Feed(&c, 1);
    Frame f;
    auto complete = decoder.Next(&f);
    ASSERT_TRUE(complete.ok());
    if (complete.value()) seen.push_back(f);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].payload, a.payload);
  EXPECT_EQ(seen[1].type, FrameType::kFinish);
}

TEST(FrameCodecTest, UnknownTypeAndOversizedLengthAreStickyErrors) {
  {
    FrameDecoder decoder;
    const std::string wire = std::string("\x01\x00\x00\x00", 4) + "Z";
    decoder.Feed(wire.data(), wire.size());
    Frame f;
    EXPECT_FALSE(decoder.Next(&f).ok());
    // Sticky: even after more (valid) bytes the stream stays dead.
    const std::string good = EncodeFrame(Frame{FrameType::kFinish, ""});
    decoder.Feed(good.data(), good.size());
    EXPECT_FALSE(decoder.Next(&f).ok());
  }
  {
    FrameDecoder decoder;
    const std::uint32_t huge = kMaxFramePayload + 2;
    char prefix[5];
    prefix[0] = static_cast<char>(huge & 0xff);
    prefix[1] = static_cast<char>((huge >> 8) & 0xff);
    prefix[2] = static_cast<char>((huge >> 16) & 0xff);
    prefix[3] = static_cast<char>((huge >> 24) & 0xff);
    prefix[4] = 'E';
    decoder.Feed(prefix, sizeof(prefix));
    Frame f;
    EXPECT_FALSE(decoder.Next(&f).ok());
  }
}

TEST(FrameCodecTest, ZeroLengthFrameIsRejected) {
  FrameDecoder decoder;
  const char wire[4] = {0, 0, 0, 0};  // length 0: no room for the type byte
  decoder.Feed(wire, sizeof(wire));
  Frame f;
  EXPECT_FALSE(decoder.Next(&f).ok());
}

TEST(AckCodecTest, RoundTripsAndValidates) {
  Ack in;
  in.code = StatusCode::kResourceExhausted;
  in.admitted = (1ull << 40) + 17;
  in.message = "backpressure: 12 free slot(s)";
  auto out = DecodeAckPayload(EncodeAckPayload(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().code, in.code);
  EXPECT_EQ(out.value().admitted, in.admitted);
  EXPECT_EQ(out.value().message, in.message);

  const Status status = AckToStatus(out.value());
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_NE(status.ToString().find("backpressure"), std::string::npos);
  EXPECT_TRUE(AckToStatus(Ack{}).ok());

  EXPECT_FALSE(DecodeAckPayload("").ok());          // too short
  EXPECT_FALSE(DecodeAckPayload("\x63........").ok());  // bogus code 99
}

TEST(EventsPayloadTest, RoundTripsAndRejectsBadRecords) {
  const std::vector<io::Event> events = {
      TaskEvent(0.0, 12.5, 40.25),
      WorkerEvent(0.37, 5.0, 6.0, 0.92),
      TaskEvent(1.5, 999.0, 0.125),
  };
  const std::string payload = EncodeEventsPayload(events);
  auto decoded = DecodeEventsPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].kind, events[i].kind);
    EXPECT_DOUBLE_EQ(decoded.value()[i].time, events[i].time);
    EXPECT_EQ(decoded.value()[i].location, events[i].location);
  }

  EXPECT_FALSE(DecodeEventsPayload("t 0 1 2").ok());   // missing newline
  EXPECT_FALSE(DecodeEventsPayload("x 0 1 2\n").ok()); // unknown kind
  EXPECT_FALSE(DecodeEventsPayload("w 0 1 2\n").ok()); // missing accuracy
}

// ---------------------------------------------------------------------------
// Loopback socket tests: a real IngestServer over unix:/tmp/..., served from
// a background thread, driven by IngestClient.

class LoopbackServer {
 public:
  /// `pre_ingest`: events applied to the service before the server starts,
  /// simulating the durable state a crashed predecessor left behind.
  explicit LoopbackServer(std::size_t queue_capacity, int shards = 1,
                          const std::vector<io::Event>& pre_ingest = {}) {
    root_ = "/tmp/ltc_net_wire_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++);
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    gen::StreamConfig cfg;  // header parameters only
    cfg.num_tasks = 1;
    cfg.num_workers = 1;
    auto log = gen::GenerateStreamEvents(cfg);
    log.status().CheckOK();
    io::EventLog header = std::move(log).value();
    header.events.clear();

    svc::RecoverableService::Options sopts;
    sopts.state_dir = root_ + "/state";
    sopts.stream.algorithm = "LAF";
    sopts.stream.batch_deadline = 0.5;
    sopts.stream.shards = shards;
    sopts.stream.validate = false;
    sopts.wal.fsync = false;
    auto service = svc::RecoverableService::Open(header, sopts);
    service.status().CheckOK();
    service_ = std::move(service).value();
    for (const io::Event& event : pre_ingest) {
      service_->Ingest(event).CheckOK();
    }

    ServerOptions nopts;
    nopts.listen = address();
    nopts.queue_capacity = queue_capacity;
    nopts.poll_interval_ms = 5;
    server_ = std::make_unique<IngestServer>(service_.get(), nopts);
    thread_ = std::thread([this] { serve_status_ = server_->Serve(&stop_); });
    // Wait for the socket to be bindable/connectable.
    for (int i = 0; i < 400; ++i) {
      if (std::filesystem::exists(root_ + "/sock")) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  ~LoopbackServer() {
    if (thread_.joinable()) {
      stop_.store(true);
      thread_.join();
    }
    std::filesystem::remove_all(root_);
  }

  std::string address() const { return "unix:" + root_ + "/sock"; }
  svc::RecoverableService& service() { return *service_; }
  IngestServer& server() { return *server_; }

  /// Joins the serve thread (after a finish frame or stop) and returns its
  /// status.
  Status Join() {
    if (thread_.joinable()) thread_.join();
    return serve_status_;
  }

  void RequestStop() { stop_.store(true); }

 private:
  static std::atomic<int> counter_;
  std::string root_;
  std::unique_ptr<svc::RecoverableService> service_;
  std::unique_ptr<IngestServer> server_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  Status serve_status_;
};

std::atomic<int> LoopbackServer::counter_{0};

/// Connect with a short retry loop: the serve thread binds asynchronously.
StatusOr<std::unique_ptr<IngestClient>> ConnectRetry(
    const std::string& address, ClientOptions options = {}) {
  Status last = Status::Unavailable("never attempted");
  for (int i = 0; i < 400; ++i) {
    auto client = IngestClient::Connect(address, options);
    if (client.ok()) return client;
    last = client.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return last;
}

TEST(IngestServerTest, AdmitsAppliesAndFinishes) {
  LoopbackServer loopback(/*queue_capacity=*/1024);

  gen::StreamConfig cfg;
  cfg.num_tasks = 20;
  cfg.num_workers = 400;
  cfg.seed = 5;
  auto log = gen::GenerateStreamEvents(cfg);
  log.status().CheckOK();
  const std::int64_t n = log.value().num_events();

  auto client = ConnectRetry(loopback.address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<io::Event> frame;
  for (const io::Event& e : log.value().events) {
    frame.push_back(e);
    if (frame.size() == 100) {
      ASSERT_TRUE(client.value()->SendEvents(frame).ok());
      frame.clear();
    }
  }
  ASSERT_TRUE(client.value()->SendEvents(frame).ok());

  auto stats = client.value()->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().message.empty());

  auto finish = client.value()->Finish();
  ASSERT_TRUE(finish.ok()) << finish.status().ToString();
  EXPECT_EQ(finish.value().admitted, static_cast<std::uint64_t>(n));

  ASSERT_TRUE(loopback.Join().ok());
  // The finish ack is only sent after the drain: every admitted event has
  // been applied through the durable service.
  EXPECT_EQ(loopback.service().events_applied(), n);
  const IngestCounters& c = loopback.server().counters();
  EXPECT_EQ(c.events_admitted, n);
  EXPECT_EQ(c.events_rejected, 0);
  EXPECT_LE(c.queue_high_water, std::size_t{1024});
}

TEST(IngestServerTest, RejectsTimeRegressionsAllOrNothing) {
  LoopbackServer loopback(/*queue_capacity=*/1024);
  auto client = ConnectRetry(loopback.address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_TRUE(client.value()
                  ->SendEvents({TaskEvent(10.0, 1.0, 1.0)})
                  .ok());
  // A frame straddling the regression is rejected whole: the in-order
  // event at its head must not be admitted either.
  const Status rejected = client.value()->SendEvents(
      {TaskEvent(11.0, 2.0, 2.0), TaskEvent(5.0, 3.0, 3.0)});
  EXPECT_TRUE(rejected.IsInvalidArgument()) << rejected.ToString();
  // The stream is untouched; in-order traffic keeps flowing.
  ASSERT_TRUE(client.value()->SendEvents({TaskEvent(10.5, 4.0, 4.0)}).ok());

  auto finish = client.value()->Finish();
  ASSERT_TRUE(finish.ok());
  EXPECT_EQ(finish.value().admitted, 2u);
  ASSERT_TRUE(loopback.Join().ok());
  const IngestCounters& c = loopback.server().counters();
  EXPECT_EQ(c.events_admitted, 2);
  EXPECT_EQ(c.events_rejected, 2);
  EXPECT_EQ(c.frames_rejected, 1);
}

TEST(IngestServerTest, BackpressureRejectsWithoutAdmittingAnything) {
  LoopbackServer loopback(/*queue_capacity=*/8);
  auto client = ConnectRetry(loopback.address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // A frame larger than the whole queue can never be admitted: after
  // max_attempts backpressure rejections SendEvents reports
  // resource-exhausted, and the admitted total is untouched.
  ClientOptions impatient;
  impatient.max_attempts = 3;
  impatient.backoff_initial_us = 1;
  impatient.backoff_max_us = 2;
  auto hasty = ConnectRetry(loopback.address(), impatient);
  ASSERT_TRUE(hasty.ok());
  std::vector<io::Event> oversized;
  for (int i = 0; i < 16; ++i) {
    oversized.push_back(TaskEvent(1.0, 1.0 + i, 1.0));
  }
  const Status rejected = hasty.value()->SendEvents(oversized);
  EXPECT_TRUE(rejected.IsResourceExhausted()) << rejected.ToString();
  EXPECT_EQ(hasty.value()->frames_retried(), 3);
  EXPECT_EQ(hasty.value()->admitted(), 0u);

  // Right-sized frames drain through fine on the first connection.
  for (int i = 0; i < 10; ++i) {
    std::vector<io::Event> frame;
    for (int j = 0; j < 4; ++j) {
      frame.push_back(TaskEvent(2.0 + i, 10.0 + j, 2.0));
    }
    ASSERT_TRUE(client.value()->SendEvents(frame).ok());
  }
  auto finish = client.value()->Finish();
  ASSERT_TRUE(finish.ok());
  EXPECT_EQ(finish.value().admitted, 40u);
  ASSERT_TRUE(loopback.Join().ok());
  EXPECT_EQ(loopback.service().events_applied(), 40);
  EXPECT_GE(loopback.server().counters().frames_rejected, 3);
}

TEST(IngestServerTest, StopFlagDrainsAdmittedEvents) {
  LoopbackServer loopback(/*queue_capacity=*/1024);
  auto client = ConnectRetry(loopback.address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()
                  ->SendEvents({TaskEvent(1.0, 1.0, 1.0),
                                WorkerEvent(2.0, 1.5, 1.5, 0.9)})
                  .ok());
  loopback.RequestStop();
  ASSERT_TRUE(loopback.Join().ok());
  // The graceful drain applied everything admitted before the stop.
  EXPECT_EQ(loopback.service().events_applied(), 2);
}

// A server started over durable state reports the recovered position in
// every ack — the hello ack is how a reconnecting client learns how many
// of its events the predecessor's WAL already holds, so it resumes instead
// of replaying from zero into time-regression rejects.
TEST(IngestServerTest, HelloAckReportsRecoveredPosition) {
  std::vector<io::Event> recovered;
  for (int i = 0; i < 7; ++i) {
    recovered.push_back(TaskEvent(1.0 + i, 5.0 + i, 5.0));
  }
  LoopbackServer loopback(/*queue_capacity=*/64, /*shards=*/1, recovered);

  auto client = ConnectRetry(loopback.address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client.value()->admitted(), 7u);

  // The total keeps counting from the durable position...
  ASSERT_TRUE(client.value()->SendEvents({TaskEvent(10.0, 2.0, 2.0)}).ok());
  EXPECT_EQ(client.value()->admitted(), 8u);
  // ...while the session counters stay session-local.
  auto finish = client.value()->Finish();
  ASSERT_TRUE(finish.ok());
  EXPECT_EQ(finish.value().admitted, 8u);
  ASSERT_TRUE(loopback.Join().ok());
  EXPECT_EQ(loopback.server().counters().events_admitted, 1);
  EXPECT_EQ(loopback.service().events_applied(), 8);
}

TEST(IngestServerTest, HelloProtocolMismatchIsRejected) {
  LoopbackServer loopback(/*queue_capacity=*/64);
  auto sock = ConnectTo(loopback.address());
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  Frame hello;
  hello.type = FrameType::kHello;
  hello.payload = "ltc-wire v999";
  ASSERT_TRUE(sock.value().WriteAll(EncodeFrame(hello)).ok());

  FrameDecoder decoder;
  char buf[4096];
  Frame reply;
  while (true) {
    auto complete = decoder.Next(&reply);
    ASSERT_TRUE(complete.ok());
    if (complete.value()) break;
    auto n = sock.value().ReadSome(buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(n.value(), 0u);
    decoder.Feed(buf, n.value());
  }
  ASSERT_EQ(reply.type, FrameType::kAck);
  auto ack = DecodeAckPayload(reply.payload);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().code, StatusCode::kInvalidArgument);

  loopback.RequestStop();
  ASSERT_TRUE(loopback.Join().ok());
}

}  // namespace
}  // namespace net
}  // namespace ltc
