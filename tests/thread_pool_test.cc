// Tests for the common::ThreadPool underneath exp::SweepRunner: all
// submitted tasks complete, exceptions propagate through the returned
// futures, FIFO start order holds, and destruction drains the queue.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ltc {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] {
      count.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  auto future = pool.Submit([] {});
  future.get();
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto throwing = pool.Submit([] { throw std::runtime_error("cell failed"); });
  EXPECT_THROW(throwing.get(), std::runtime_error);
  // The worker that ran the throwing task keeps serving the queue.
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, SingleThreadPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (std::future<void>& future : futures) future.get();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool: every submitted task must have run
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  ThreadPool pool(2);
  // Two tasks that can only finish if they overlap in time.
  std::promise<void> first_running;
  std::atomic<bool> second_done{false};
  auto first = pool.Submit([&first_running, &second_done] {
    first_running.set_value();
    while (!second_done.load()) {
      std::this_thread::yield();
    }
  });
  first_running.get_future().wait();
  auto second = pool.Submit([&second_done] { second_done.store(true); });
  second.get();
  first.get();
  EXPECT_TRUE(second_done.load());
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

}  // namespace
}  // namespace ltc
