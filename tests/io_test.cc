// Tests for workload/arrangement (de)serialisation and the robustness of
// the ltc-events v1 reader (truncation, CRLF line endings).

#include <gtest/gtest.h>

#include <cstdio>

#include "gen/example_paper.h"
#include "gen/stream.h"
#include "gen/synthetic.h"
#include "io/event_log.h"
#include "io/wal.h"
#include "io/workload_io.h"
#include "model/eligibility.h"
#include "sim/engine.h"

namespace ltc {
namespace io {
namespace {

model::ProblemInstance SmallSynthetic(std::uint64_t seed = 3) {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 8;
  cfg.num_workers = 50;
  cfg.grid_side = 80.0;
  cfg.seed = seed;
  auto instance = gen::GenerateSynthetic(cfg);
  instance.status().CheckOK();
  return std::move(instance).value();
}

TEST(WorkloadIoTest, InstanceRoundTripsExactly) {
  const model::ProblemInstance original = SmallSynthetic();
  auto text = SerializeInstance(original);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseInstance(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->num_tasks(), original.num_tasks());
  EXPECT_EQ(parsed->num_workers(), original.num_workers());
  EXPECT_DOUBLE_EQ(parsed->epsilon, original.epsilon);
  EXPECT_EQ(parsed->capacity, original.capacity);
  EXPECT_DOUBLE_EQ(parsed->acc_min, original.acc_min);
  for (std::int64_t t = 0; t < original.num_tasks(); ++t) {
    EXPECT_EQ(parsed->tasks[static_cast<std::size_t>(t)].location,
              original.tasks[static_cast<std::size_t>(t)].location);
  }
  for (std::int64_t i = 0; i < original.num_workers(); ++i) {
    const auto& a = parsed->workers[static_cast<std::size_t>(i)];
    const auto& b = original.workers[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.location, b.location);
    EXPECT_DOUBLE_EQ(a.historical_accuracy, b.historical_accuracy);
    EXPECT_EQ(a.user_id, b.user_id);
  }
  // Accuracy function round-trips semantically: same Acc on every pair.
  for (std::int64_t t = 0; t < original.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(parsed->Acc(1, static_cast<model::TaskId>(t)),
                     original.Acc(1, static_cast<model::TaskId>(t)));
  }
}

TEST(WorkloadIoTest, FileRoundTrip) {
  const model::ProblemInstance original = SmallSynthetic(9);
  const std::string path = "/tmp/ltc_io_test_workload.txt";
  ASSERT_TRUE(SaveInstance(original, path).ok());
  auto loaded = LoadInstance(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_workers(), original.num_workers());
  // Algorithms behave identically on the loaded instance.
  auto index_a = model::EligibilityIndex::Build(&original);
  auto index_b = model::EligibilityIndex::Build(&loaded.value());
  ASSERT_TRUE(index_a.ok());
  ASSERT_TRUE(index_b.ok());
  auto ma = sim::RunAlgorithm("LAF", original, *index_a);
  auto mb = sim::RunAlgorithm("LAF", *loaded, *index_b);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(ma->latency, mb->latency);
}

TEST(WorkloadIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadInstance("/tmp/no_such_ltc_file.txt").status().IsIOError());
}

TEST(WorkloadIoTest, ParseRejectsCorruptInputs) {
  EXPECT_TRUE(ParseInstance("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInstance("not a workload").status().IsInvalidArgument());

  const model::ProblemInstance original = SmallSynthetic();
  auto text = SerializeInstance(original);
  ASSERT_TRUE(text.ok());
  // Truncate a worker line.
  std::string bad = text.value();
  bad.replace(bad.rfind("w "), 3, "w x");
  EXPECT_FALSE(ParseInstance(bad).ok());
  // Declared counts must match.
  std::string miscount = text.value();
  miscount.replace(miscount.find("tasks 8"), 7, "tasks 9");
  EXPECT_FALSE(ParseInstance(miscount).ok());
  // Unknown record type.
  EXPECT_FALSE(ParseInstance(std::string("# ltc-workload v1\nz 1\n")).ok());
}

TEST(WorkloadIoTest, MatrixAccuracyNotSerialisable) {
  auto instance = gen::PaperExampleInstance(0.2);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(SerializeInstance(*instance).status().code() ==
              StatusCode::kNotImplemented);
}

TEST(ArrangementIoTest, RoundTripPreservesAssignments) {
  const model::ProblemInstance instance = SmallSynthetic(11);
  auto index = model::EligibilityIndex::Build(&instance);
  ASSERT_TRUE(index.ok());
  auto scheduler = algo::MakeOnlineScheduler("LAF", 1);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(instance, *index).CheckOK();
  std::vector<model::TaskId> assigned;
  for (const auto& w : instance.workers) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(w, &assigned).CheckOK();
  }
  const model::Arrangement& original = (*scheduler)->arrangement();
  const std::string text = SerializeArrangement(original);
  auto parsed = ParseArrangement(instance, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  EXPECT_EQ(parsed->MaxWorkerIndex(), original.MaxWorkerIndex());
  for (std::int64_t t = 0; t < instance.num_tasks(); ++t) {
    EXPECT_NEAR(parsed->accumulated(static_cast<model::TaskId>(t)),
                original.accumulated(static_cast<model::TaskId>(t)), 1e-9);
  }
}

std::string SmallEventLogText() {
  gen::StreamConfig cfg;
  cfg.num_tasks = 5;
  cfg.num_workers = 40;
  cfg.seed = 17;
  auto log = gen::GenerateStreamEvents(cfg);
  log.status().CheckOK();
  auto text = SerializeEventLog(log.value());
  text.status().CheckOK();
  return std::move(text).value();
}

// A file cut mid-record must fail loudly: a truncated coordinate or
// accuracy field can still parse as a perfectly valid (wrong) number, so
// the reader treats a missing final newline as truncation rather than
// risking a silently mangled last event.
TEST(EventLogIoTest, TruncatedFinalLineIsACleanError) {
  const std::string text = SmallEventLogText();
  ASSERT_EQ(text.back(), '\n');

  // Cut inside the last record (drop the newline plus a few characters).
  const std::string truncated = text.substr(0, text.size() - 4);
  const auto parsed = ParseEventLog(truncated);
  ASSERT_TRUE(parsed.status().IsInvalidArgument()) << parsed.status().ToString();
  EXPECT_NE(parsed.status().ToString().find("truncated"), std::string::npos)
      << parsed.status().ToString();

  // Even a cut that lands exactly on the record boundary (newline gone,
  // record text complete) reads as truncation — writers always terminate.
  const std::string no_newline = text.substr(0, text.size() - 1);
  EXPECT_TRUE(ParseEventLog(no_newline).status().IsInvalidArgument());

  // Dropping whole records keeps the declared-count check as the backstop.
  const std::string last_line_start = text.substr(0, text.rfind('\n'));
  const std::string whole_line_gone =
      text.substr(0, last_line_start.rfind('\n') + 1);
  EXPECT_TRUE(ParseEventLog(whole_line_gone).status().IsInvalidArgument());
}

// CRLF-terminated logs (a file that went through a Windows editor or a
// "text mode" transfer) must parse to the same stream, byte for byte after
// re-serialisation.
TEST(EventLogIoTest, CrlfTerminatedLogParsesTolerantly) {
  const std::string text = SmallEventLogText();
  std::string crlf;
  crlf.reserve(text.size() + 64);
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const auto parsed = ParseEventLog(crlf);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto round = SerializeEventLog(parsed.value());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), text);
}

// --------------------------------------------------------------------------
// Write-ahead log (io/wal.h): the WAL is an ltc-events file, so recovery is
// ParseEventLog over the durable prefix; these pin the documented recovery
// rules — torn tails truncate, corrupt prefixes surface, unflushed
// group-commit windows vanish on crash.

io::EventLog SmallEventLog() {
  gen::StreamConfig cfg;
  cfg.num_tasks = 5;
  cfg.num_workers = 40;
  cfg.seed = 17;
  auto log = gen::GenerateStreamEvents(cfg);
  log.status().CheckOK();
  return std::move(log).value();
}

std::string WalPath(const std::string& name) {
  const std::string path = "/tmp/ltc_io_test_" + name + ".events";
  std::remove(path.c_str());
  return path;
}

TEST(WalTest, CreateAppendReopenRoundTrip) {
  const io::EventLog log = SmallEventLog();
  const std::string path = WalPath("roundtrip");
  WalOptions wopts;
  wopts.fsync = false;
  {
    auto writer = EventLogWriter::Create(path, log, wopts);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (std::size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer.value()->Append(log.events[i]).ok());
    }
    EXPECT_EQ(writer.value()->records_appended(), 10);
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  WalRecovery recovery;
  auto reopened = EventLogWriter::OpenForAppend(path, &recovery, wopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(recovery.truncated_bytes, 0);
  ASSERT_EQ(recovery.log.num_events(), 10);
  EXPECT_DOUBLE_EQ(recovery.log.epsilon, log.epsilon);
  EXPECT_EQ(recovery.log.capacity, log.capacity);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(FormatEventRecord(recovery.log.events[i]),
              FormatEventRecord(log.events[i]));
  }
  // Appends continue seamlessly; the file stays a parseable ltc-events log.
  ASSERT_TRUE(reopened.value()->Append(log.events[10]).ok());
  ASSERT_TRUE(reopened.value()->Close().ok());
  auto loaded = LoadEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_events(), 11);
}

// Satellite regression (PR 7): a torn final record — the partial write a
// crash leaves behind — is detected and truncated on open-for-append
// instead of poisoning the parse or, worse, parsing as a valid-but-wrong
// event.
TEST(WalTest, TornFinalRecordIsTruncatedOnReopen) {
  const io::EventLog log = SmallEventLog();
  const std::string path = WalPath("torn");
  WalOptions wopts;
  wopts.fsync = false;
  {
    auto writer = EventLogWriter::Create(path, log, wopts);
    ASSERT_TRUE(writer.ok());
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(writer.value()->Append(log.events[i]).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  // Tear: a record whose tail never hit the disk. "w 1.25 3" would even
  // parse as a (wrong) prefix of a worker record if naively completed.
  {
    auto text = ReadFile(path);
    ASSERT_TRUE(text.ok());
    ASSERT_TRUE(WriteFile(path, text.value() + "w 1.25 3").ok());
  }
  WalRecovery recovery;
  auto reopened = EventLogWriter::OpenForAppend(path, &recovery, wopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(recovery.truncated_bytes, 8);
  EXPECT_EQ(recovery.log.num_events(), 6);
  // The truncation is physical: appends land where the tear was removed.
  ASSERT_TRUE(reopened.value()->Append(log.events[6]).ok());
  ASSERT_TRUE(reopened.value()->Close().ok());
  auto loaded = LoadEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_events(), 7);
}

// A corrupt *complete* line is not tearing — it must surface as IOError,
// never be silently dropped.
TEST(WalTest, CorruptDurablePrefixSurfaces) {
  const io::EventLog log = SmallEventLog();
  const std::string path = WalPath("corrupt");
  WalOptions wopts;
  wopts.fsync = false;
  {
    auto writer = EventLogWriter::Create(path, log, wopts);
    ASSERT_TRUE(writer.ok());
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(writer.value()->Append(log.events[i]).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto text = ReadFile(path);
  ASSERT_TRUE(text.ok());
  std::string bad = text.value();
  bad.replace(bad.rfind("\nw "), 3, "\nw x", 4);
  ASSERT_TRUE(WriteFile(path, bad).ok());
  WalRecovery recovery;
  EXPECT_TRUE(EventLogWriter::OpenForAppend(path, &recovery, wopts)
                  .status()
                  .IsIOError());
}

TEST(WalTest, CrashDropsOnlyTheUnflushedWindow) {
  const io::EventLog log = SmallEventLog();
  const std::string path = WalPath("window");
  WalOptions wopts;
  wopts.group_commit = 4;
  wopts.fsync = false;
  {
    auto writer = EventLogWriter::Create(path, log, wopts);
    ASSERT_TRUE(writer.ok());
    for (std::size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer.value()->Append(log.events[i]).ok());
    }
    // Crash: destroyed without Close — the buffered partial window (10
    // appended, 8 flushed) must vanish, not half-land.
  }
  WalRecovery recovery;
  auto reopened = EventLogWriter::OpenForAppend(path, &recovery, wopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(recovery.log.num_events(), 8);
  EXPECT_EQ(recovery.truncated_bytes, 0);
}

TEST(WalTest, OpenForAppendOnMissingFileIsNotFound) {
  WalRecovery recovery;
  EXPECT_TRUE(
      EventLogWriter::OpenForAppend("/tmp/no_such_ltc_wal.events", &recovery)
          .status()
          .IsNotFound());
}

TEST(EventRecordCodecTest, ParseIsInverseOfFormat) {
  const io::EventLog log = SmallEventLog();
  for (const Event& e : log.events) {
    auto parsed = ParseEventRecord(FormatEventRecord(e));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(FormatEventRecord(parsed.value()), FormatEventRecord(e));
  }
  EXPECT_FALSE(ParseEventRecord("t 0 1").ok());       // missing field
  EXPECT_FALSE(ParseEventRecord("w 0 1 2").ok());     // missing accuracy
  EXPECT_FALSE(ParseEventRecord("m 0 zero 1 2").ok());  // non-numeric id
  EXPECT_FALSE(ParseEventRecord("q 0 1 2").ok());     // unknown kind
  EXPECT_FALSE(ParseEventRecord("").ok());
}

TEST(ArrangementIoTest, RejectsBadReferences) {
  const model::ProblemInstance instance = SmallSynthetic();
  EXPECT_FALSE(ParseArrangement(instance, "").ok());
  EXPECT_FALSE(
      ParseArrangement(instance, "# ltc-arrangement v1\na 999 0\n").ok());
  EXPECT_FALSE(
      ParseArrangement(instance, "# ltc-arrangement v1\na 1 999\n").ok());
  EXPECT_FALSE(
      ParseArrangement(instance, "# ltc-arrangement v1\nbogus\n").ok());
}

}  // namespace
}  // namespace io
}  // namespace ltc
