// Tests of the streaming service layer: the ltc-events v1 codec, the
// Poisson stream generator, StreamEngine's micro-batch admission, the
// RunOnline-equivalence of deadline-0 admission, and the ltc_serve replay
// determinism contract (byte-identical assignment logs for any --threads).

#include <memory>
#include <vector>

#include "algo/laf.h"
#include "gen/stream.h"
#include "gen/synthetic.h"
#include "io/event_log.h"
#include "model/eligibility.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "svc/serve_main.h"
#include "svc/stream_engine.h"
#include "gtest/gtest.h"

namespace ltc {
namespace svc {
namespace {

gen::StreamConfig SmallStream(std::uint64_t seed = 11) {
  gen::StreamConfig cfg;
  cfg.num_tasks = 60;
  cfg.num_workers = 3000;
  cfg.task_rate = 30.0;
  cfg.worker_rate = 300.0;
  cfg.seed = seed;
  return cfg;
}

TEST(EventLogTest, RoundTripsThroughText) {
  auto generated = gen::GenerateStreamEvents(SmallStream());
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const io::EventLog& log = generated.value();
  EXPECT_EQ(log.num_events(), 60 + 3000);

  auto text = io::SerializeEventLog(log);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto parsed = io::ParseEventLog(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto text2 = io::SerializeEventLog(parsed.value());
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(text.value(), text2.value());
}

TEST(EventLogTest, GenerationIsDeterministic) {
  auto a = gen::GenerateStreamEvents(SmallStream(3));
  auto b = gen::GenerateStreamEvents(SmallStream(3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(io::SerializeEventLog(a.value()).value(),
            io::SerializeEventLog(b.value()).value());
}

TEST(EventLogTest, ValidateRejectsMalformedStreams) {
  io::EventLog log;
  log.accuracy = std::make_shared<model::SigmoidDistanceAccuracy>(30.0);

  io::Event task;
  task.kind = io::Event::Kind::kTaskArrival;
  task.time = 1.0;
  io::Event early;
  early.kind = io::Event::Kind::kWorkerArrival;
  early.time = 0.5;
  early.accuracy = 0.9;
  log.events = {task, early};
  EXPECT_TRUE(log.Validate().IsInvalidArgument());  // decreasing time

  io::Event move;
  move.kind = io::Event::Kind::kTaskMove;
  move.time = 2.0;
  move.task = 7;  // never arrived
  log.events = {task, move};
  EXPECT_TRUE(log.Validate().IsInvalidArgument());

  move.task = 0;
  log.events = {task, move};
  EXPECT_TRUE(log.Validate().ok());
}

TEST(EventLogTest, MoveEventsRoundTrip) {
  gen::StreamConfig cfg = SmallStream(5);
  cfg.move_fraction = 0.5;
  auto generated = gen::GenerateStreamEvents(cfg);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  std::int64_t moves = 0;
  for (const io::Event& e : generated.value().events) {
    if (e.kind == io::Event::Kind::kTaskMove) ++moves;
  }
  EXPECT_GT(moves, 0);
  auto text = io::SerializeEventLog(generated.value());
  ASSERT_TRUE(text.ok());
  auto parsed = io::ParseEventLog(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

// Deadline-0 admission over an EventLogFromInstance stream is per-arrival
// admission of exactly the instance's worker order against a fully
// materialised task set — it must reproduce sim::RunOnline's arrangement
// assignment for assignment.
TEST(StreamEngineTest, DeadlineZeroMatchesRunOnline) {
  gen::SyntheticConfig synth;
  synth.num_tasks = 50;
  synth.num_workers = 2500;
  synth.seed = 9;
  auto instance = gen::GenerateSynthetic(synth);
  ASSERT_TRUE(instance.ok());
  auto index = model::EligibilityIndex::Build(&instance.value());
  ASSERT_TRUE(index.ok());

  algo::Laf laf;
  auto batch = sim::RunOnline(instance.value(), index.value(), &laf);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  auto log = io::EventLogFromInstance(instance.value());
  ASSERT_TRUE(log.ok());
  StreamOptions options;
  options.algorithm = "LAF";
  options.batch_deadline = 0.0;
  std::vector<StreamAssignment> streamed;
  auto replay = ReplayEventLog(log.value(), options, &streamed);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  // RunOnline stops at completion; the stream serves the whole log but
  // cannot assign anything once every task is closed, so the committed
  // assignment sequences agree exactly.
  const model::Arrangement& arr = laf.arrangement();
  ASSERT_EQ(static_cast<std::int64_t>(streamed.size()), arr.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].worker, arr.assignments()[i].worker);
    EXPECT_EQ(streamed[i].task, arr.assignments()[i].task);
  }
  EXPECT_EQ(replay.value().run.latency, batch.value().latency);
  EXPECT_EQ(replay.value().run.completed, batch.value().completed);
  EXPECT_TRUE(replay.value().stream.validated);
  EXPECT_EQ(replay.value().stream.assignment_latency.count, arr.size());
}

TEST(StreamEngineTest, DeadlineBatchesAndMaxBatchBound) {
  auto log = gen::GenerateStreamEvents(SmallStream(21));
  ASSERT_TRUE(log.ok());

  StreamOptions options;
  options.algorithm = "AAM";
  options.batch_deadline = 0.5;
  auto replay = ReplayEventLog(log.value(), options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  const StreamMetrics& m = replay.value().stream;
  // ~300 workers arrive per deadline window, so admission is heavily
  // batched: far fewer batches than workers, and real batch sizes.
  EXPECT_LT(m.batches, m.worker_events / 10);
  EXPECT_GT(m.max_batch_size, 10);
  EXPECT_GT(m.tasks_completed, 0);
  EXPECT_TRUE(m.validated);
  EXPECT_EQ(m.assignments, m.assignment_latency.count);
  EXPECT_EQ(m.tasks_completed, m.completion_latency.count);
  EXPECT_LE(m.assignment_latency.p50, m.assignment_latency.p95);
  EXPECT_LE(m.assignment_latency.p95, m.assignment_latency.p99);
  EXPECT_LE(m.assignment_latency.p99, m.assignment_latency.max);

  options.max_batch = 25;
  auto capped = ReplayEventLog(log.value(), options);
  ASSERT_TRUE(capped.ok());
  EXPECT_LE(capped.value().stream.max_batch_size, 25);
  EXPECT_GT(capped.value().stream.batches, m.batches);
}

TEST(StreamEngineTest, MoveEventsRelocateOpenTasks) {
  gen::StreamConfig cfg = SmallStream(33);
  cfg.move_fraction = 0.4;
  auto log = gen::GenerateStreamEvents(cfg);
  ASSERT_TRUE(log.ok());

  StreamOptions options;
  options.algorithm = "LAF";
  options.batch_deadline = 0.25;
  auto replay = ReplayEventLog(log.value(), options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_GT(replay.value().stream.move_events, 0);
  // Moved tasks make post-hoc Acc* validation unsound, so the engine skips
  // it and says so.
  EXPECT_FALSE(replay.value().stream.validated);
  EXPECT_GT(replay.value().stream.tasks_completed, 0);
}

// The acceptance-criteria contract: an identical event log and seed produce
// a byte-identical assignment log for any --threads value.
TEST(ServeDeterminismTest, AssignmentLogIdenticalAcrossThreadCounts) {
  for (const char* algo : {"LAF", "AAM", "Random"}) {
    gen::StreamConfig cfg = SmallStream(77);
    cfg.move_fraction = 0.1;
    auto log = gen::GenerateStreamEvents(cfg);
    ASSERT_TRUE(log.ok());

    StreamOptions options;
    options.algorithm = algo;
    options.batch_deadline = 0.4;
    options.seed = 123;

    options.threads = 1;
    auto one = RunService(log.value(), options);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    options.threads = 4;
    auto four = RunService(log.value(), options);
    ASSERT_TRUE(four.ok()) << four.status().ToString();

    EXPECT_EQ(one.value().assignment_log, four.value().assignment_log)
        << "algorithm " << algo;
    EXPECT_GT(one.value().metrics.assignments, 0) << "algorithm " << algo;
  }
}

// The adaptive deadline policy (DESIGN.md §13) must keep the determinism
// contract — byte-identical assignment logs for any --threads, per shard
// count — while actually exercising both sides of the forecast's wager
// (quiet-cell immediate flushes AND hot-cell extensions).
TEST(ServeDeterminismTest, AdaptiveDeadlineLogIdenticalAcrossThreadCounts) {
  gen::StreamConfig cfg = SmallStream(91);
  cfg.num_hotspots = 3;
  auto log = gen::GenerateStreamEvents(cfg);
  ASSERT_TRUE(log.ok());

  for (int shards : {1, 2}) {
    StreamOptions options;
    options.algorithm = "LAF";
    options.deadline_policy = DeadlinePolicy::kAdaptive;
    options.batch_deadline = 0.5;  // the hard cap
    options.seed = 123;
    options.shards = shards;

    options.threads = 1;
    auto one = RunService(log.value(), options);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    options.threads = 4;
    auto four = RunService(log.value(), options);
    ASSERT_TRUE(four.ok()) << four.status().ToString();

    EXPECT_EQ(one.value().assignment_log, four.value().assignment_log)
        << "shards " << shards;
    // The adaptive configuration is recorded in the log header, so a log
    // can never be mistaken for a fixed-deadline run's.
    EXPECT_NE(one.value().assignment_log.find("policy adaptive"),
              std::string::npos);
    EXPECT_GT(one.value().metrics.quiet_flushes, 0) << "shards " << shards;
    EXPECT_GT(one.value().metrics.deadline_extensions, 0)
        << "shards " << shards;
    EXPECT_GT(one.value().metrics.assignments, 0) << "shards " << shards;
  }
}

TEST(StreamEngineTest, AdaptivePolicyRequiresPositiveCap) {
  auto log = gen::GenerateStreamEvents(SmallStream(2));
  ASSERT_TRUE(log.ok());
  StreamOptions options;
  options.algorithm = "LAF";
  options.deadline_policy = DeadlinePolicy::kAdaptive;
  options.batch_deadline = 0.0;
  EXPECT_TRUE(RunService(log.value(), options).status().IsInvalidArgument());
}

TEST(StreamEngineTest, RejectsOfflineSchedulersAndBadEvents) {
  auto log = gen::GenerateStreamEvents(SmallStream(2));
  ASSERT_TRUE(log.ok());

  StreamOptions offline;
  offline.algorithm = "MCF-LTC";
  EXPECT_TRUE(StreamEngine::Create(log.value(), offline)
                  .status()
                  .IsInvalidArgument());

  StreamOptions options;
  auto engine = StreamEngine::Create(log.value(), options);
  ASSERT_TRUE(engine.ok());
  io::Event e;
  e.kind = io::Event::Kind::kWorkerArrival;
  e.time = 5.0;
  e.accuracy = 0.9;
  ASSERT_TRUE(engine.value()->OnEvent(e).ok());
  e.time = 4.0;  // clock must not run backwards
  EXPECT_TRUE(engine.value()->OnEvent(e).IsInvalidArgument());
  e.kind = io::Event::Kind::kTaskMove;
  e.time = 6.0;
  e.task = 3;  // no task has arrived
  EXPECT_TRUE(engine.value()->OnEvent(e).IsInvalidArgument());
}

TEST(LatencySummaryTest, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const sim::LatencySummary s = sim::SummarizeLatencies(&samples);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);

  std::vector<double> empty;
  const sim::LatencySummary zero = sim::SummarizeLatencies(&empty);
  EXPECT_EQ(zero.count, 0);
  EXPECT_DOUBLE_EQ(zero.max, 0.0);
}

// Regression for the nearest-rank rank computation: q*n products that are
// meant to be integral must not overshoot their rank through the FP
// representation of q (0.95 and 0.99 are not exact doubles), and tiny q*n
// must clamp to rank 1, never rank 0. Pinned at n = 1, 2, 100.
TEST(LatencySummaryTest, NearestRankExactAtIntegralProducts) {
  // n = 1: every percentile is the single sample.
  std::vector<double> one = {7.5};
  const sim::LatencySummary s1 = sim::SummarizeLatencies(&one);
  EXPECT_DOUBLE_EQ(s1.p50, 7.5);
  EXPECT_DOUBLE_EQ(s1.p95, 7.5);
  EXPECT_DOUBLE_EQ(s1.p99, 7.5);

  // n = 2: p50 has the integral product 0.5 * 2 = 1 — it must pick the
  // *first* sample (rank 1), not round up to the second; p95/p99 round the
  // fractional 1.9/1.98 up to rank 2.
  std::vector<double> two = {3.0, 9.0};
  const sim::LatencySummary s2 = sim::SummarizeLatencies(&two);
  EXPECT_DOUBLE_EQ(s2.p50, 3.0);
  EXPECT_DOUBLE_EQ(s2.p95, 9.0);
  EXPECT_DOUBLE_EQ(s2.p99, 9.0);

  // n = 100: all three products are integral (50, 95, 99) and must land
  // exactly on those ranks for any FP representation of q.
  std::vector<double> hundred;
  for (int i = 100; i >= 1; --i) hundred.push_back(static_cast<double>(i));
  const sim::LatencySummary s100 = sim::SummarizeLatencies(&hundred);
  EXPECT_DOUBLE_EQ(s100.p50, 50.0);
  EXPECT_DOUBLE_EQ(s100.p95, 95.0);
  EXPECT_DOUBLE_EQ(s100.p99, 99.0);
}

}  // namespace
}  // namespace svc
}  // namespace ltc
