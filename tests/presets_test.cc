// Asserts the preset registry matches Table IV / Table V and that the figure
// index covers every evaluation plot of the paper.

#include "sim/presets.h"

#include <gtest/gtest.h>

#include <set>

namespace ltc {
namespace sim {
namespace {

TEST(PresetsTest, TableFourDefaultsAreBoldValues) {
  const auto cfg = TableFourDefaults();
  EXPECT_EQ(cfg.num_tasks, 3000);
  EXPECT_EQ(cfg.num_workers, 40000);
  EXPECT_EQ(cfg.capacity, 6);
  EXPECT_DOUBLE_EQ(cfg.epsilon, 0.10);
  EXPECT_DOUBLE_EQ(cfg.accuracy_mean, 0.86);
  EXPECT_DOUBLE_EQ(cfg.accuracy_stddev, 0.05);
  EXPECT_DOUBLE_EQ(cfg.grid_side, 1000.0);
  EXPECT_DOUBLE_EQ(cfg.dmax, 30.0);
}

TEST(PresetsTest, TableFourFactorGrids) {
  EXPECT_EQ(TableFourTaskLevels(),
            (std::vector<std::int64_t>{1000, 2000, 3000, 4000, 5000}));
  EXPECT_EQ(TableFourCapacityLevels(),
            (std::vector<std::int32_t>{4, 5, 6, 7, 8}));
  EXPECT_EQ(TableFourAccuracyMeanLevels(),
            (std::vector<double>{0.82, 0.84, 0.86, 0.88, 0.90}));
  EXPECT_EQ(TableFourEpsilonLevels(),
            (std::vector<double>{0.06, 0.10, 0.14, 0.18, 0.22}));
  EXPECT_EQ(TableFourScalabilityTasks(),
            (std::vector<std::int64_t>{10000, 20000, 30000, 40000, 50000,
                                       100000}));
  EXPECT_EQ(TableFourScalabilityWorkers(), 400000);
}

TEST(PresetsTest, TableFiveCities) {
  const auto ny = TableFiveNewYork();
  EXPECT_EQ(ny.city.name, "NewYork");
  EXPECT_EQ(ny.city.num_tasks, 3717);
  EXPECT_EQ(ny.city.num_checkins, 227428);
  EXPECT_EQ(ny.capacity, 6);
  EXPECT_DOUBLE_EQ(ny.accuracy_mean, 0.86);
  EXPECT_DOUBLE_EQ(ny.accuracy_stddev, 0.05);
  const auto tokyo = TableFiveTokyo();
  EXPECT_EQ(tokyo.city.name, "Tokyo");
  EXPECT_EQ(tokyo.city.num_tasks, 9317);
  EXPECT_EQ(tokyo.city.num_checkins, 573703);
}

TEST(PresetsTest, FigureIndexCoversAllTwentyFourPanels) {
  const auto index = PaperFigureIndex();
  ASSERT_EQ(index.size(), 8u);  // 8 sweeps x 3 metrics = 24 panels
  std::set<std::string> panels;
  std::set<std::string> binaries;
  for (const auto& spec : index) {
    EXPECT_FALSE(spec.levels.empty()) << spec.paper_figures;
    EXPECT_FALSE(spec.factor.empty());
    panels.insert(spec.paper_figures);
    binaries.insert(spec.bench_binary);
    // Five levels everywhere except the six-point scalability sweep.
    if (spec.bench_binary == "bench_fig4_scalability") {
      EXPECT_EQ(spec.levels.size(), 6u);
    } else {
      EXPECT_EQ(spec.levels.size(), 5u);
    }
  }
  EXPECT_EQ(panels.size(), 8u);
  EXPECT_EQ(binaries.size(), 8u);
  // Figure 3 and Figure 4 are both covered, panels a-l each.
  EXPECT_TRUE(panels.count("3a/3e/3i"));
  EXPECT_TRUE(panels.count("3d/3h/3l"));
  EXPECT_TRUE(panels.count("4a/4e/4i"));
  EXPECT_TRUE(panels.count("4d/4h/4l"));
}

}  // namespace
}  // namespace sim
}  // namespace ltc
