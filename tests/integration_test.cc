// Cross-module property tests: every algorithm, over a grid of generated
// instances, must (a) produce a constraint-valid arrangement, (b) respect
// the Theorem-2 latency bounds, (c) never beat the exhaustive optimum on
// tiny instances, and (d) be deterministic for a fixed seed.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "algo/exhaustive.h"
#include "algo/registry.h"
#include "gen/foursquare.h"
#include "gen/synthetic.h"
#include "model/arrangement.h"
#include "model/eligibility.h"
#include "model/quality.h"
#include "model/voting.h"
#include "sim/engine.h"

namespace ltc {
namespace {

struct Built {
  model::ProblemInstance instance;
  std::unique_ptr<model::EligibilityIndex> index;
};

Built Build(model::ProblemInstance instance) {
  Built b{std::move(instance), nullptr};
  auto index = model::EligibilityIndex::Build(&b.instance);
  index.status().CheckOK();
  b.index =
      std::make_unique<model::EligibilityIndex>(std::move(index).value());
  return b;
}

// ---- Parameterised sweep over (K, epsilon, seed) on synthetic workloads ----

using SweepParam = std::tuple<int, double, int>;  // K, epsilon, seed

class SyntheticSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  Built MakeInstance() const {
    const auto [k, epsilon, seed] = GetParam();
    gen::SyntheticConfig cfg;
    cfg.num_tasks = 15;
    cfg.num_workers = 3000;
    cfg.grid_side = 150.0;  // paper-like worker density around each task
    cfg.capacity = k;
    cfg.epsilon = epsilon;
    cfg.seed = static_cast<std::uint64_t>(seed);
    auto instance = gen::GenerateSynthetic(cfg);
    instance.status().CheckOK();
    return Build(std::move(instance).value());
  }
};

TEST_P(SyntheticSweepTest, AllAlgorithmsProduceValidCompleteArrangements) {
  Built b = MakeInstance();
  const auto bounds = model::TheoremTwoBounds(
      b.instance.num_tasks(), b.instance.Delta(), b.instance.capacity);
  for (const auto& name : algo::StandardAlgorithms()) {
    auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
    ASSERT_TRUE(metrics.ok()) << name << ": " << metrics.status().ToString();
    ASSERT_TRUE(metrics->completed)
        << name << " failed to complete: " << b.instance.Summary();
    // Lower bound of Theorem 2 (holds for any feasible arrangement).
    EXPECT_GE(static_cast<double>(metrics->latency),
              bounds.lower - 1e-9)
        << name;
    EXPECT_LE(metrics->latency, b.instance.num_workers()) << name;
    // Quality: accumulated Acc* per task really reached delta — checked by
    // the engine's validator (would have errored otherwise).
  }
}

TEST_P(SyntheticSweepTest, DeterministicAcrossRepeatedRuns) {
  Built b = MakeInstance();
  for (const auto& name : algo::StandardAlgorithms()) {
    auto m1 = sim::RunAlgorithm(name, b.instance, *b.index);
    auto m2 = sim::RunAlgorithm(name, b.instance, *b.index);
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(m2.ok());
    EXPECT_EQ(m1->latency, m2->latency) << name;
    EXPECT_EQ(m1->stats.assignments, m2->stats.assignments) << name;
  }
}

TEST_P(SyntheticSweepTest, CompletedTasksPassVotingSanity) {
  Built b = MakeInstance();
  auto metrics = sim::RunAlgorithm("AAM", b.instance, *b.index);
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics->completed);
  // Re-run AAM to obtain the arrangement (engine reports metrics only).
  auto scheduler = algo::MakeOnlineScheduler("AAM", 1);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(b.instance, *b.index).CheckOK();
  std::vector<model::TaskId> assigned;
  for (const auto& w : b.instance.workers) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(w, &assigned).CheckOK();
  }
  auto outcome = model::SimulateVoting(b.instance, (*scheduler)->arrangement(),
                                       400, 17);
  ASSERT_TRUE(outcome.ok());
  // Hoeffding guarantee: per-task error below epsilon. Empirically the rate
  // is far below; allow 2x slack for simulation noise at 400 trials.
  EXPECT_LT(outcome->empirical_error_rate, 2.0 * b.instance.epsilon);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SyntheticSweepTest,
    ::testing::Combine(::testing::Values(2, 4, 6),          // K
                       ::testing::Values(0.06, 0.14, 0.22),  // epsilon
                       ::testing::Values(1, 2)));            // seed

// ---- Online algorithms never beat the exhaustive optimum ----

class OptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimalityTest, NoAlgorithmBeatsExhaustive) {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 3;
  cfg.num_workers = 10;
  cfg.grid_side = 25.0;
  cfg.capacity = 2;
  cfg.epsilon = 0.2;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  auto instance = gen::GenerateSynthetic(cfg);
  ASSERT_TRUE(instance.ok());
  Built b = Build(std::move(instance).value());

  algo::Exhaustive exhaustive;
  auto optimal = exhaustive.Run(b.instance, *b.index);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();
  if (!optimal->completed) {
    // Infeasible instance: every algorithm must also fail to complete.
    for (const auto& name : algo::StandardAlgorithms()) {
      auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
      ASSERT_TRUE(metrics.ok()) << name;
      EXPECT_FALSE(metrics->completed) << name;
    }
    return;
  }
  for (const auto& name : algo::StandardAlgorithms()) {
    auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
    ASSERT_TRUE(metrics.ok()) << name;
    if (metrics->completed) {
      EXPECT_GE(metrics->latency, optimal->latency)
          << name << " beat the optimum on " << b.instance.Summary();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityTest, ::testing::Range(0, 12));

// ---- Monotonicity: a larger tolerable error rate never hurts ----

TEST(MonotonicityTest, LargerEpsilonNeverIncreasesLafLatency) {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 12;
  cfg.num_workers = 3000;
  cfg.grid_side = 120.0;
  cfg.seed = 9;
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (double epsilon : {0.06, 0.10, 0.14, 0.18, 0.22}) {
    cfg.epsilon = epsilon;
    auto instance = gen::GenerateSynthetic(cfg);
    ASSERT_TRUE(instance.ok());
    Built b = Build(std::move(instance).value());
    auto metrics = sim::RunAlgorithm("LAF", b.instance, *b.index);
    ASSERT_TRUE(metrics.ok());
    ASSERT_TRUE(metrics->completed);
    // Same instance modulo epsilon; LAF's greedy order is epsilon-free, so
    // shrinking delta can only stop earlier.
    EXPECT_LE(metrics->latency, prev) << "epsilon=" << epsilon;
    prev = metrics->latency;
  }
}

TEST(MonotonicityTest, LargerCapacityNeverIncreasesLowerBound) {
  double prev = std::numeric_limits<double>::max();
  for (int k = 2; k <= 10; ++k) {
    const auto bounds = model::TheoremTwoBounds(100, 4.6, k);
    EXPECT_LT(bounds.lower, prev);
    prev = bounds.lower;
  }
}

// ---- Foursquare-like workloads complete end to end ----

class CityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CityTest, AllAlgorithmsRunOnCityWorkload) {
  gen::FoursquareConfig cfg;
  cfg.city = std::string(GetParam()) == "NewYork" ? gen::NewYorkPreset()
                                                  : gen::TokyoPreset();
  cfg.scale = 0.01;
  cfg.epsilon = 0.14;
  auto instance = gen::GenerateFoursquareLike(cfg);
  ASSERT_TRUE(instance.ok());
  Built b = Build(std::move(instance).value());
  for (const auto& name : algo::StandardAlgorithms()) {
    auto metrics = sim::RunAlgorithm(name, b.instance, *b.index);
    ASSERT_TRUE(metrics.ok()) << name << ": " << metrics.status().ToString();
    // City streams may leave a handful of fringe tasks incomplete; validity
    // is still mandatory (enforced by the engine) and most tasks must be
    // done.
    const auto& stats = metrics->stats;
    EXPECT_GT(stats.assignments, 0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Cities, CityTest,
                         ::testing::Values("NewYork", "Tokyo"));

// ---- AAM vs LAF: the paper's headline qualitative result ----

TEST(QualitativeShapeTest, AamUsuallyAtLeastMatchesLafOnSyntheticBatches) {
  int aam_wins_or_ties = 0;
  constexpr int kRounds = 8;
  for (int seed = 0; seed < kRounds; ++seed) {
    gen::SyntheticConfig cfg;
    cfg.num_tasks = 25;
    cfg.num_workers = 4000;
    cfg.grid_side = 200.0;
    cfg.seed = static_cast<std::uint64_t>(seed + 100);
    auto instance = gen::GenerateSynthetic(cfg);
    ASSERT_TRUE(instance.ok());
    Built b = Build(std::move(instance).value());
    auto laf = sim::RunAlgorithm("LAF", b.instance, *b.index);
    auto aam = sim::RunAlgorithm("AAM", b.instance, *b.index);
    ASSERT_TRUE(laf.ok());
    ASSERT_TRUE(aam.ok());
    if (aam->latency <= laf->latency) ++aam_wins_or_ties;
  }
  // Paper Sec. V: "In most cases, AAM outperforms Random and LAF".
  EXPECT_GE(aam_wins_or_ties, kRounds / 2);
}

}  // namespace
}  // namespace ltc
