// Contract tests for the OnlineScheduler protocol, run against every online
// algorithm in the registry: initialisation discipline, per-arrival capacity,
// irrevocability, termination behaviour, and re-initialisation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"

namespace ltc {
namespace algo {
namespace {

const char* kOnlineAlgorithms[] = {"LAF", "AAM", "Random", "LGF-only",
                                   "LRF-only"};

struct Built {
  model::ProblemInstance instance;
  std::unique_ptr<model::EligibilityIndex> index;
};

Built BuildSmall(std::uint64_t seed = 4) {
  gen::SyntheticConfig cfg;
  cfg.num_tasks = 10;
  cfg.num_workers = 600;
  cfg.grid_side = 100.0;
  cfg.capacity = 3;
  cfg.seed = seed;
  auto instance = gen::GenerateSynthetic(cfg);
  instance.status().CheckOK();
  Built b{std::move(instance).value(), nullptr};
  auto index = model::EligibilityIndex::Build(&b.instance);
  index.status().CheckOK();
  b.index =
      std::make_unique<model::EligibilityIndex>(std::move(index).value());
  return b;
}

class OnlineContractTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OnlineContractTest, OnArrivalBeforeInitFails) {
  auto scheduler = MakeOnlineScheduler(GetParam(), 1);
  ASSERT_TRUE(scheduler.ok());
  Built b = BuildSmall();
  std::vector<model::TaskId> assigned;
  EXPECT_TRUE((*scheduler)
                  ->OnArrival(b.instance.workers[0], &assigned)
                  .IsFailedPrecondition());
}

TEST_P(OnlineContractTest, InitRejectsMismatchedIndex) {
  Built a = BuildSmall(1);
  Built b = BuildSmall(2);
  auto scheduler = MakeOnlineScheduler(GetParam(), 1);
  ASSERT_TRUE(scheduler.ok());
  EXPECT_TRUE(
      (*scheduler)->Init(a.instance, *b.index).IsInvalidArgument());
}

TEST_P(OnlineContractTest, PerArrivalCapacityRespected) {
  Built b = BuildSmall();
  auto scheduler = MakeOnlineScheduler(GetParam(), 1);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(b.instance, *b.index).CheckOK();
  std::vector<model::TaskId> assigned;
  for (const auto& w : b.instance.workers) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(w, &assigned).CheckOK();
    EXPECT_LE(static_cast<std::int64_t>(assigned.size()),
              static_cast<std::int64_t>(b.instance.capacity))
        << GetParam();
    // No duplicate tasks within one arrival.
    std::vector<model::TaskId> sorted = assigned;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << GetParam();
  }
}

TEST_P(OnlineContractTest, ArrangementIsAppendOnly) {
  Built b = BuildSmall();
  auto scheduler = MakeOnlineScheduler(GetParam(), 1);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(b.instance, *b.index).CheckOK();
  std::vector<model::TaskId> assigned;
  std::int64_t last_size = 0;
  model::WorkerIndex last_max = 0;
  for (const auto& w : b.instance.workers) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(w, &assigned).CheckOK();
    const auto& arr = (*scheduler)->arrangement();
    EXPECT_GE(arr.size(), last_size) << GetParam();
    EXPECT_GE(arr.MaxWorkerIndex(), last_max) << GetParam();
    // Newly appended assignments all belong to the current worker.
    for (std::int64_t i = last_size; i < arr.size(); ++i) {
      EXPECT_EQ(arr.assignments()[static_cast<std::size_t>(i)].worker,
                w.index)
          << GetParam();
    }
    last_size = arr.size();
    last_max = arr.MaxWorkerIndex();
  }
}

TEST_P(OnlineContractTest, NoAssignmentsAfterDone) {
  Built b = BuildSmall();
  auto scheduler = MakeOnlineScheduler(GetParam(), 1);
  ASSERT_TRUE(scheduler.ok());
  (*scheduler)->Init(b.instance, *b.index).CheckOK();
  std::vector<model::TaskId> assigned;
  std::size_t i = 0;
  for (; i < b.instance.workers.size(); ++i) {
    if ((*scheduler)->Done()) break;
    (*scheduler)->OnArrival(b.instance.workers[i], &assigned).CheckOK();
  }
  if (!(*scheduler)->Done()) GTEST_SKIP() << "stream exhausted first";
  const std::int64_t size_at_done = (*scheduler)->arrangement().size();
  // Feeding more workers after completion must be a no-op.
  for (std::size_t extra = i; extra < b.instance.workers.size() && extra < i + 5;
       ++extra) {
    (*scheduler)->OnArrival(b.instance.workers[extra], &assigned).CheckOK();
    EXPECT_TRUE(assigned.empty()) << GetParam();
  }
  EXPECT_EQ((*scheduler)->arrangement().size(), size_at_done) << GetParam();
}

TEST_P(OnlineContractTest, ReInitResetsState) {
  Built b = BuildSmall();
  auto scheduler = MakeOnlineScheduler(GetParam(), 1);
  ASSERT_TRUE(scheduler.ok());
  auto run_once = [&]() {
    (*scheduler)->Init(b.instance, *b.index).CheckOK();
    std::vector<model::TaskId> assigned;
    for (const auto& w : b.instance.workers) {
      if ((*scheduler)->Done()) break;
      (*scheduler)->OnArrival(w, &assigned).CheckOK();
    }
    return (*scheduler)->arrangement().MaxWorkerIndex();
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second) << GetParam() << " must reset on Init";
}

INSTANTIATE_TEST_SUITE_P(Roster, OnlineContractTest,
                         ::testing::ValuesIn(kOnlineAlgorithms));

}  // namespace
}  // namespace algo
}  // namespace ltc
