#!/usr/bin/env python3
"""Gate a bench JSON summary against a checked-in perf baseline.

Compares every (figure, case label, algorithm) triple present in BOTH the
current summary and the baseline, for one or more gated metrics, and fails
when any metric's relative drift exceeds its tolerance — or when either file
is missing or malformed, when the files share no figure, no (case,
algorithm) cell, or no value of a gated metric. An empty comparison is
always an error, never a pass.

Metrics are arbitrary numeric fields of the algorithm records, so the
stream bench's percentile fields (p95_assignment_latency,
p99_assignment_latency) gate exactly like the means.

Accepted file shapes:
  * a single-suite object: {"figure": ..., "cases": [...]}  (bench_suite
    with one --figure label, bench_stream_throughput, and the
    BENCH_*.json `current` block's parent)
  * a multi-suite wrapper: {"suites": [<object>, ...]}
  * a baseline file whose comparable run lives under "current"
    (BENCH_PR2.json: {"figure": ..., "current": {"cases": [...]}}).

A baseline value of exactly 0 has no relative drift; those cells fall
back to an absolute comparison (|current - baseline| against the same
tolerance, in the metric's own units) instead of being skipped.

Usage:
  tools/bench_compare.py --current bench_smoke.json --baseline BENCH_PR2.json
  tools/bench_compare.py ... --metric mean_latency --tolerance 0.25
  tools/bench_compare.py ... \\
      --gate mean_assignment_latency:0.25 --gate events_per_sec:0.9:floor
  tools/bench_compare.py --selftest     # unit checks (run by CI bench-smoke)
"""

import argparse
import json
import os
import sys


def fail(message):
    print(f"bench_compare: FAIL: {message}")
    sys.exit(1)


def load_json(path, role):
    if not os.path.exists(path):
        fail(f"{role} file is missing: {path!r} — check the path, and for a "
             f"baseline make sure the BENCH_*.json is committed")
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as error:
        fail(f"cannot parse {role} file {path}: {error}")


def extract_suites(doc, path):
    """Returns {figure_name: {(label, algo): record}} from any shape."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not a JSON object")
    objects = doc.get("suites", [doc])
    if not isinstance(objects, list):
        fail(f"{path}: 'suites' is not a list")
    suites = {}
    for obj in objects:
        if not isinstance(obj, dict) or "figure" not in obj:
            fail(f"{path}: suite entry without a 'figure' field")
        # Baselines keep the comparable run under "current".
        body = obj.get("current", obj)
        cases = body.get("cases")
        if not isinstance(cases, list) or not cases:
            fail(f"{path}: figure {obj['figure']!r} has no cases")
        cells = {}
        for case in cases:
            label = case.get("label")
            algorithms = case.get("algorithms")
            if label is None or not isinstance(algorithms, list) or not algorithms:
                fail(f"{path}: malformed case in figure {obj['figure']!r}")
            for algo in algorithms:
                if "name" not in algo:
                    fail(f"{path}: algorithm record without 'name' "
                         f"in figure {obj['figure']!r}")
                cells[(label, algo["name"])] = algo
        suites[obj["figure"]] = cells
    return suites


def parse_gates(args):
    """Resolves --gate METRIC[:TOL[:floor]] (repeatable) over the
    --metric/--tolerance defaults; returns [(metric, tolerance, floor_only)].

    A trailing ':floor' makes the gate one-sided: only a drop below
    baseline*(1 - tolerance) fails. That is the right shape for
    machine-dependent throughput metrics (events_per_sec), where a faster
    runner — or a genuine optimisation — must never fail CI."""
    if not args.gate:
        return [(args.metric, args.tolerance, False)]
    gates = []
    for spec in args.gate:
        parts = spec.split(":")
        if not parts[0] or len(parts) > 3:
            fail(f"bad --gate spec {spec!r}: expected METRIC[:TOL[:floor]]")
        metric = parts[0]
        tolerance = args.tolerance
        if len(parts) >= 2:
            try:
                tolerance = float(parts[1])
            except ValueError:
                fail(f"bad --gate tolerance in {spec!r}")
        floor_only = False
        if len(parts) == 3:
            if parts[2] != "floor":
                fail(f"bad --gate mode in {spec!r}: only 'floor' is known")
            floor_only = True
        gates.append((metric, tolerance, floor_only))
    return gates


def compare_cells(baseline, current, gates):
    """Diffs every shared (figure, case, algorithm) cell for every gate.

    Returns (shared_cells, rows, failures). A row is (figure, label, name,
    metric, tolerance, base, cur, drift, mode, status) where mode is "rel"
    for the usual relative-drift comparison and "abs" for the zero-baseline
    fallback: a baseline value of exactly 0 (a zero p50 at tiny scale, say)
    has no well-defined relative drift, so the tolerance is applied to the
    absolute difference in the metric's own units instead of silently
    skipping the cell."""
    shared_cells = 0
    rows = []
    failures = []
    for figure in sorted(set(baseline) & set(current)):
        base_cells = baseline[figure]
        cur_cells = current[figure]
        for key in sorted(set(base_cells) & set(cur_cells)):
            shared_cells += 1
            base_algo = base_cells[key]
            cur_algo = cur_cells[key]
            for metric, tolerance, floor_only in gates:
                base_value = base_algo.get(metric)
                cur_value = cur_algo.get(metric)
                if base_value is None or cur_value is None:
                    continue  # e.g. BENCH_PR2's 'before' block has no latency
                if base_value == 0:
                    mode = "abs"
                    drift = cur_value - base_value
                else:
                    mode = "rel"
                    drift = (cur_value - base_value) / abs(base_value)
                if floor_only:
                    bad = drift < -tolerance  # improvements never fail
                else:
                    bad = abs(drift) > tolerance
                status = "DRIFT" if bad else "ok"
                rows.append((figure, key[0], key[1], metric, tolerance,
                             base_value, cur_value, drift, mode, status))
                if bad:
                    failures.append(rows[-1])
    return shared_cells, rows, failures


def selftest():
    """Unit checks of the comparison core (run by CI's bench-smoke job)."""
    gates_rel = [("m", 0.25, False)]
    gates_floor = [("m", 0.9, True)]

    def suites(value):
        return {"fig": {("c", "A"): {"m": value}}}

    # Zero baseline: absolute fallback, not a silent skip.
    shared, rows, failures = compare_cells(suites(0.0), suites(0.0), gates_rel)
    assert shared == 1 and len(rows) == 1 and not failures, rows
    assert rows[0][8] == "abs", rows
    _, rows, failures = compare_cells(suites(0.0), suites(0.1), gates_rel)
    assert not failures, rows          # |0.1 - 0| within 0.25 absolute
    _, rows, failures = compare_cells(suites(0.0), suites(0.5), gates_rel)
    assert len(failures) == 1, rows    # |0.5 - 0| exceeds 0.25 absolute
    # Zero-baseline floor gate: a throughput metric can only collapse
    # upward from 0, so it never fails.
    _, rows, failures = compare_cells(suites(0.0), suites(123.0), gates_floor)
    assert not failures, rows
    # Relative path unchanged: +30% fails a symmetric 25% gate, a floor
    # gate fails only on drops.
    _, rows, failures = compare_cells(suites(1.0), suites(1.3), gates_rel)
    assert len(failures) == 1 and rows[0][8] == "rel", rows
    _, rows, failures = compare_cells(suites(1.0), suites(5.0), gates_floor)
    assert not failures, rows
    _, rows, failures = compare_cells(suites(1.0), suites(0.05), gates_floor)
    assert len(failures) == 1, rows
    print("bench_compare: SELFTEST PASS")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current",
                        help="bench JSON summary to gate")
    parser.add_argument("--baseline",
                        help="checked-in BENCH_*.json baseline")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in unit checks and exit")
    parser.add_argument("--metric", default="mean_latency",
                        help="algorithm record field to diff (when no --gate)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max relative drift (0.25 = 25%%); the default "
                             "for --gate specs without an explicit tolerance")
    parser.add_argument("--gate", action="append", default=[],
                        metavar="METRIC[:TOL[:floor]]",
                        help="gate this metric at this tolerance; repeatable "
                             "(e.g. --gate mean_assignment_latency:0.25 "
                             "--gate events_per_sec:0.9:floor); a trailing "
                             ":floor fails only on drops, never improvements")
    args = parser.parse_args()

    if args.selftest:
        selftest()
        return
    if not args.current or not args.baseline:
        fail("--current and --baseline are required (unless --selftest)")

    current = extract_suites(load_json(args.current, "current"), args.current)
    baseline = extract_suites(load_json(args.baseline, "baseline"),
                              args.baseline)
    gates = parse_gates(args)

    shared_figures = sorted(set(baseline) & set(current))
    if not shared_figures:
        fail(f"no overlapping figure: baseline has {sorted(baseline)}, "
             f"current has {sorted(current)}")
    shared_cells, rows, failures = compare_cells(baseline, current, gates)

    if shared_cells == 0:
        fail(f"figures overlap but no (case, algorithm) cell does — "
             f"baseline {args.baseline} names no case the current run "
             f"produced (did the case labels or roster change?)")
    if not rows:
        fail("no comparable value: the shared cells carry none of the gated "
             f"metric(s) {[m for m, _, _ in gates]}")
    for metric, _, _ in gates:
        if not any(r[3] == metric for r in rows):
            fail(f"gated metric {metric!r} is absent from every shared cell "
                 f"— wrong metric name, or stale baseline?")

    header = (f"{'figure':20} {'case':>8} {'algorithm':12} "
              f"{'metric':26} {'baseline':>12} {'current':>12} {'drift':>8}")
    print(header)
    print("-" * len(header))
    for figure, label, name, metric, tolerance, base_value, cur_value, \
            drift, mode, status in rows:
        shown = f"{drift:+7.1%}" if mode == "rel" else f"{drift:+8.3f}"
        print(f"{figure:20} {label:>8} {name:12} {metric:26} "
              f"{base_value:12.3f} {cur_value:12.3f} {shown} {status}")

    if failures:
        detail = "; ".join(
            f"{figure}/{label}/{name} {metric} drifted "
            + (f"{drift:+.1%}" if mode == "rel"
               else f"{drift:+.3f} (absolute; zero baseline)")
            + f" (tolerance {tolerance:.0%})"
            for figure, label, name, metric, tolerance, _, _, drift, mode, _
            in failures[:5])
        fail(f"{len(failures)}/{len(rows)} comparison(s) exceed tolerance: "
             f"{detail}")
    gate_desc = ", ".join(f"{m}@{t:.0%}{' floor' if fl else ''}"
                          for m, t, fl in gates)
    print(f"bench_compare: PASS ({len(rows)} comparison(s), "
          f"gates: {gate_desc})")


if __name__ == "__main__":
    main()
