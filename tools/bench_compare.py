#!/usr/bin/env python3
"""Gate a bench_suite --json summary against a checked-in perf baseline.

Compares every (figure, case label, algorithm) triple present in BOTH the
current summary and the baseline, and fails when the relative drift of the
gated metric (default: mean_latency, the schedule-dependent quantity the
determinism contract pins) exceeds the tolerance, or when either file is
malformed, or when nothing matches at all.

Accepted file shapes:
  * a single-suite object: {"figure": ..., "cases": [...]}  (bench_suite
    with one --figure label, and the BENCH_*.json `current` block's parent)
  * a multi-suite wrapper: {"suites": [<object>, ...]}
  * a baseline file whose comparable run lives under "current"
    (BENCH_PR2.json: {"figure": ..., "current": {"cases": [...]}}).

Usage:
  tools/bench_compare.py --current bench_smoke.json --baseline BENCH_PR2.json
  tools/bench_compare.py ... --metric mean_latency --tolerance 0.25
"""

import argparse
import json
import sys


def fail(message):
    print(f"bench_compare: FAIL: {message}")
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as error:
        fail(f"cannot parse {path}: {error}")


def extract_suites(doc, path):
    """Returns {figure_name: {(label, algo): record}} from any shape."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not a JSON object")
    objects = doc.get("suites", [doc])
    if not isinstance(objects, list):
        fail(f"{path}: 'suites' is not a list")
    suites = {}
    for obj in objects:
        if not isinstance(obj, dict) or "figure" not in obj:
            fail(f"{path}: suite entry without a 'figure' field")
        # Baselines keep the comparable run under "current".
        body = obj.get("current", obj)
        cases = body.get("cases")
        if not isinstance(cases, list) or not cases:
            fail(f"{path}: figure {obj['figure']!r} has no cases")
        cells = {}
        for case in cases:
            label = case.get("label")
            algorithms = case.get("algorithms")
            if label is None or not isinstance(algorithms, list) or not algorithms:
                fail(f"{path}: malformed case in figure {obj['figure']!r}")
            for algo in algorithms:
                if "name" not in algo:
                    fail(f"{path}: algorithm record without 'name' "
                         f"in figure {obj['figure']!r}")
                cells[(label, algo["name"])] = algo
        suites[obj["figure"]] = cells
    return suites


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="bench_suite --json output to gate")
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_*.json baseline")
    parser.add_argument("--metric", default="mean_latency",
                        help="algorithm record field to diff")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max relative drift (0.25 = 25%%)")
    args = parser.parse_args()

    current = extract_suites(load_json(args.current), args.current)
    baseline = extract_suites(load_json(args.baseline), args.baseline)

    rows = []
    failures = []
    for figure, base_cells in baseline.items():
        cur_cells = current.get(figure)
        if cur_cells is None:
            continue
        for key, base_algo in sorted(base_cells.items()):
            cur_algo = cur_cells.get(key)
            if cur_algo is None:
                continue
            base_value = base_algo.get(args.metric)
            cur_value = cur_algo.get(args.metric)
            if base_value is None or cur_value is None:
                continue  # e.g. BENCH_PR2's 'before' block has no latency
            if base_value == 0:
                continue
            drift = abs(cur_value - base_value) / abs(base_value)
            status = "ok" if drift <= args.tolerance else "DRIFT"
            rows.append((figure, key[0], key[1], base_value, cur_value,
                         drift, status))
            if drift > args.tolerance:
                failures.append(rows[-1])

    if not rows:
        fail("no (figure, case, algorithm) triple present in both files")

    header = (f"{'figure':24} {'case':>8} {'algorithm':14} "
              f"{'baseline':>12} {'current':>12} {'drift':>8}")
    print(header)
    print("-" * len(header))
    for figure, label, name, base_value, cur_value, drift, status in rows:
        print(f"{figure:24} {label:>8} {name:14} {base_value:12.3f} "
              f"{cur_value:12.3f} {drift:7.1%} {status}")

    if failures:
        fail(f"{len(failures)}/{len(rows)} comparison(s) exceed "
             f"{args.tolerance:.0%} {args.metric} drift")
    print(f"bench_compare: PASS ({len(rows)} comparison(s), "
          f"metric={args.metric}, tolerance={args.tolerance:.0%})")


if __name__ == "__main__":
    main()
