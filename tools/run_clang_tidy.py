#!/usr/bin/env python3
"""Parallel clang-tidy driver for the ltc tree (DESIGN.md §14).

Thin, deterministic wrapper over clang-tidy + compile_commands.json:

  * selects the repo's own translation units (src/tests/bench/examples),
    never the FetchContent _deps tree;
  * fans out across cores and de-duplicates diagnostics (a header finding
    otherwise repeats once per includer);
  * passes -warnings-as-errors='*' so the curated .clang-tidy profile is a
    zero-findings contract, not a suggestion box;
  * degrades gracefully when clang-tidy is not installed (exit 0 with a
    SKIPPED notice) unless --require is given, so local runs on a gcc-only
    box don't fail while CI — which installs clang-tidy — still enforces;
  * prints a runtime summary (total seconds, slowest files) that CI lifts
    into the job summary.

Usage:
    tools/run_clang_tidy.py [--build-dir build] [--jobs N] [--require]
                            [--clang-tidy BIN] [paths...]
    tools/run_clang_tidy.py --selftest

Exit status: 0 clean or skipped, 1 on findings (or missing tool with
--require).
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

DEFAULT_PATHS = ["src", "tests", "bench", "examples"]
TIDY_CANDIDATES = [
    "clang-tidy-20", "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
    "clang-tidy-16", "clang-tidy-15", "clang-tidy-14", "clang-tidy",
]

DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>warning|error): (?P<msg>.*)$")


def find_clang_tidy(explicit):
    """Resolves the clang-tidy binary: --clang-tidy flag, then the
    LTC_CLANG_TIDY env var, then versioned names newest-first."""
    candidates = []
    if explicit:
        candidates.append(explicit)
    if os.environ.get("LTC_CLANG_TIDY"):
        candidates.append(os.environ["LTC_CLANG_TIDY"])
    candidates.extend(TIDY_CANDIDATES)
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def select_entries(entries, root, paths):
    """Translation units to lint: under one of `paths` relative to `root`,
    outside any _deps / build tree, each file once, sorted for determinism."""
    root = os.path.realpath(root)
    wanted = [os.path.join(root, p) + os.sep for p in paths]
    seen = set()
    files = []
    for entry in entries:
        path = os.path.realpath(
            os.path.join(entry.get("directory", root), entry["file"]))
        if "_deps" in path.split(os.sep):
            continue
        if not any(path.startswith(w) for w in wanted):
            continue
        if path in seen:
            continue
        seen.add(path)
        files.append(path)
    files.sort()
    return files


def parse_diagnostics(output):
    """Unique `file:line:col: sev: msg` keys from clang-tidy output. Notes
    and expansion context lines are folded into their owning diagnostic."""
    diags = set()
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.add("%s:%s:%s: %s: %s" % (
                os.path.normpath(m.group("file")), m.group("line"),
                m.group("col"), m.group("sev"), m.group("msg")))
    return diags


def run_one(binary, build_dir, path):
    start = time.monotonic()
    proc = subprocess.run(
        [binary, "-p", build_dir, "-warnings-as-errors=*", "-quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    elapsed = time.monotonic() - start
    # clang-tidy chats on stderr (N warnings generated); diagnostics land on
    # stdout, but config errors land on stderr — keep both for parsing.
    return path, proc.returncode, proc.stdout + "\n" + proc.stderr, elapsed


def run(root, build_dir, paths, binary, jobs):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print("run_clang_tidy: %s not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first" % db_path)
        return 1
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    files = select_entries(entries, root, paths)
    if not files:
        print("run_clang_tidy: no translation units under %s" %
              " ".join(paths))
        return 1

    print("run_clang_tidy: %d file(s), %d job(s), binary %s" %
          (len(files), jobs, binary))
    started = time.monotonic()
    results = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_one, binary, build_dir, p) for p in files]
        for fut in concurrent.futures.as_completed(futures):
            results.append(fut.result())
    total = time.monotonic() - started

    diags = set()
    failed_files = []
    for path, code, output, _ in results:
        file_diags = parse_diagnostics(output)
        diags |= file_diags
        if code != 0 and not file_diags:
            # Hard failure without a parseable diagnostic (bad flags, crash).
            failed_files.append((path, output.strip()))

    for diag in sorted(diags):
        print(diag)
    for path, output in failed_files:
        print("run_clang_tidy: %s failed without diagnostics:" % path)
        print("  " + "\n  ".join(output.splitlines()[-10:]))

    results.sort(key=lambda r: -r[3])
    slowest = ", ".join("%s %.1fs" % (os.path.basename(p), t)
                        for p, _, _, t in results[:5])
    print("run_clang_tidy: %d unique finding(s) in %.1fs "
          "(slowest: %s)" % (len(diags), total, slowest))
    return 1 if (diags or failed_files) else 0


# ---------------------------------------------------------------------------
# Selftest: exercises selection, parsing/dedup, and both degradation paths
# with a scripted stand-in for clang-tidy — no real clang needed.


def expect(condition, label, failures):
    if condition:
        print("  PASS %s" % label)
    else:
        print("  FAIL %s" % label)
        failures.append(label)


FAKE_OUTPUT = """\
/repo/src/io/wal.h:10:3: warning: use of undeclared thing [bugprone-x]
  note: expanded from macro 'LTC_X'
/repo/src/io/wal.h:10:3: warning: use of undeclared thing [bugprone-x]
/repo/src/io/wal.cc:20:5: error: something bad [concurrency-y]
3 warnings generated.
"""


def selftest():
    failures = []

    print("selftest: diagnostic parsing and de-duplication")
    diags = parse_diagnostics(FAKE_OUTPUT)
    expect(len(diags) == 2, "duplicate header diagnostic folded", failures)
    expect(any("concurrency-y" in d for d in diags),
           "error diagnostic kept", failures)
    expect(not any("note" in d for d in diags), "note lines folded", failures)

    print("selftest: translation-unit selection")
    with tempfile.TemporaryDirectory(prefix="ltc_tidy_selftest_") as root:
        for rel in ("src/a.cc", "src/b.cc", "tests/t.cc"):
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write("int main() { return 0; }\n")
        deps = os.path.join(root, "build", "_deps", "gtest-src", "g.cc")
        os.makedirs(os.path.dirname(deps), exist_ok=True)
        open(deps, "w").close()
        entries = [
            {"directory": root, "file": "src/a.cc"},
            {"directory": root, "file": "src/a.cc"},  # duplicate config
            {"directory": root, "file": os.path.join(root, "src/b.cc")},
            {"directory": root, "file": "tests/t.cc"},
            {"directory": root, "file": deps},
        ]
        files = select_entries(entries, root, ["src", "tests"])
        expect([os.path.relpath(p, root) for p in files]
               == ["src/a.cc", "src/b.cc", "tests/t.cc"],
               "dedup + _deps exclusion + sorted order", failures)

        print("selftest: end-to-end with a scripted clang-tidy")
        build = os.path.join(root, "build")
        with open(os.path.join(build, "compile_commands.json"), "w") as f:
            json.dump(entries[:1], f)
        fake = os.path.join(root, "fake-tidy")
        with open(fake, "w") as f:
            f.write("#!/bin/sh\n"
                    "echo \"$5:1:1: warning: seeded finding [bugprone-x]\"\n"
                    "exit 1\n")
        os.chmod(fake, 0o755)
        code = run(root, build, ["src"], fake, jobs=2)
        expect(code == 1, "seeded finding fails the run", failures)
        with open(fake, "w") as f:
            f.write("#!/bin/sh\nexit 0\n")
        code = run(root, build, ["src"], fake, jobs=2)
        expect(code == 0, "clean run passes", failures)

    print("selftest: missing-binary degradation")
    expect(find_clang_tidy("definitely-not-a-real-binary-xyz")
           in (None, shutil.which("clang-tidy")) or True,
           "resolver tolerates bogus explicit name", failures)
    missing = find_clang_tidy(None) is None
    print("  (clang-tidy %s on this machine)" %
          ("absent" if missing else "present"))

    if failures:
        print("run_clang_tidy selftest: %d FAILED" % len(failures))
        return 1
    print("run_clang_tidy selftest: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="source trees to lint (default: %s)" %
                        " ".join(DEFAULT_PATHS))
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the tool's parent)")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary to use")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument("--require", action="store_true",
                        help="fail (instead of skip) when clang-tidy is "
                        "missing — set in CI")
    parser.add_argument("--selftest", action="store_true",
                        help="run the driver's own unit checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        print("run_clang_tidy: SKIPPED — no clang-tidy binary found "
              "(install clang-tidy, or pass --clang-tidy/-$LTC_CLANG_TIDY)")
        return 1 if args.require else 0
    return run(root, args.build_dir, args.paths or DEFAULT_PATHS,
               binary, args.jobs)


if __name__ == "__main__":
    sys.exit(main())
