#!/usr/bin/env python3
"""Documentation lint: keep the docs and the code pointing at each other.

Three checks, all mechanical, all run in CI (see .github/workflows/ci.yml):

1. **Section citations.** Every ``DESIGN.md §N`` / ``DESIGN.md section N``
   citation in sources and docs must name a section heading that actually
   exists in DESIGN.md (``## §N ...``). A renumbered or deleted section
   fails the build instead of leaving dangling references.

2. **Relative markdown links.** Every intra-repo link target in the
   checked markdown files must exist on disk (fragments stripped;
   external http(s) links are out of scope).

3. **Flag tables.** Every command-line flag defined by ``ltc_serve``
   (src/svc/serve_main.cc) must appear in README.md's operator flag
   table, and every flag the bench drivers define (bench_suite,
   bench_stream_throughput) must appear somewhere in README.md — so the
   documented operator surface cannot silently drift from the binaries.

4. **Lint rule tables.** Every rule id in tools/ltc_lint.py's RULE_IDS
   roster must appear in DESIGN.md (the §14 rule table) — a new
   determinism rule cannot land undocumented, and a documented rule
   cannot silently disappear from the lint.

Usage:
    tools/doc_lint.py [--root REPO_ROOT]
    tools/doc_lint.py --selftest

Exit status 0 when clean, 1 with one line per finding otherwise.
No third-party dependencies.
"""

import argparse
import os
import re
import sys
import tempfile

# Source trees scanned for DESIGN.md citations.
SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
SOURCE_EXTS = (".h", ".cc", ".py")

# Markdown files whose citations and relative links are checked.
MARKDOWN_FILES = ["README.md", "DESIGN.md", "ROADMAP.md", "src/io/README.md"]

# Flag-definition sources and where their flags must be documented.
SERVE_MAIN = "src/svc/serve_main.cc"
BENCH_FLAG_SOURCES = ["src/exp/suite_main.cc", "bench/bench_stream_throughput.cc"]

HEADING_RE = re.compile(r"^#{2,3}\s+§(\d+)", re.M)
CITATION_RE = re.compile(r"DESIGN\.md\s+(?:§|section\s+)(\d+)")
# Matches `Flag<T> FLAG_name("flag_name", ...)`; the string literal may
# wrap to the next line after the opening parenthesis.
FLAG_DEF_RE = re.compile(r'Flag<[^>]+>\s+\w+\(\s*"([A-Za-z0-9_]+)"')
MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def design_sections(design_text):
    """Section numbers defined by ``## §N`` / ``### §N`` headings."""
    return {int(m) for m in HEADING_RE.findall(design_text)}


def iter_source_files(root):
    for d in SOURCE_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)
    for name in MARKDOWN_FILES:
        path = os.path.join(root, name)
        if os.path.isfile(path):
            yield path


def check_citations(root, sections):
    """Every DESIGN.md §N citation must resolve to a real section."""
    errors = []
    for path in iter_source_files(root):
        text = read(path)
        for lineno, line in enumerate(text.splitlines(), 1):
            for cited in CITATION_RE.findall(line):
                if int(cited) not in sections:
                    rel = os.path.relpath(path, root)
                    errors.append(
                        "%s:%d: cites DESIGN.md §%s but DESIGN.md has no "
                        "such section (have: %s)"
                        % (rel, lineno, cited,
                           ", ".join("§%d" % s for s in sorted(sections)))
                    )
    return errors


def check_markdown_links(root):
    """Relative link targets in the checked markdown files must exist."""
    errors = []
    for name in MARKDOWN_FILES:
        path = os.path.join(root, name)
        if not os.path.isfile(path):
            errors.append("%s: checked markdown file is missing" % name)
            continue
        base = os.path.dirname(path)
        for lineno, line in enumerate(read(path).splitlines(), 1):
            for target in MD_LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                rel_target = target.split("#", 1)[0]
                if not rel_target:
                    continue
                if not os.path.exists(os.path.join(base, rel_target)):
                    errors.append(
                        "%s:%d: link target '%s' does not exist"
                        % (name, lineno, target)
                    )
    return errors


def defined_flags(source_text):
    """Flag names defined via the Flag<T> registry in a C++ source."""
    return sorted(set(FLAG_DEF_RE.findall(source_text)))


def flag_table_section(readme_text):
    """The ltc_serve operator flag table's text (to end of its section)."""
    match = re.search(r"^### ltc_serve operator flags$", readme_text, re.M)
    if match is None:
        return None
    rest = readme_text[match.end():]
    nxt = re.search(r"^#{1,3}\s", rest, re.M)
    return rest[: nxt.start()] if nxt else rest


def check_flags(root):
    """Every binary-defined flag must be documented in README.md."""
    errors = []
    readme = read(os.path.join(root, "README.md"))

    table = flag_table_section(readme)
    if table is None:
        errors.append(
            "README.md: missing '### ltc_serve operator flags' section")
        table = ""
    for flag in defined_flags(read(os.path.join(root, SERVE_MAIN))):
        if "`--%s`" % flag not in table:
            errors.append(
                "README.md: ltc_serve flag --%s (defined in %s) is missing "
                "from the operator flag table" % (flag, SERVE_MAIN)
            )

    for source in BENCH_FLAG_SOURCES:
        for flag in defined_flags(read(os.path.join(root, source))):
            if "--%s" % flag not in readme:
                errors.append(
                    "README.md: bench flag --%s (defined in %s) is not "
                    "documented anywhere in README.md" % (flag, source)
                )
    return errors


LINT_TOOL = os.path.join("tools", "ltc_lint.py")
RULE_IDS_RE = re.compile(r"^RULE_IDS\s*=\s*\(([^)]*)\)", re.M)


def lint_rule_ids(lint_text):
    """Rule ids from ltc_lint.py's RULE_IDS tuple (the canonical roster)."""
    m = RULE_IDS_RE.search(lint_text)
    if m is None:
        return None
    return re.findall(r'"([a-z0-9-]+)"', m.group(1))


def check_lint_rules(root):
    """Every ltc_lint rule id must be documented in DESIGN.md."""
    lint_path = os.path.join(root, LINT_TOOL)
    design_path = os.path.join(root, "DESIGN.md")
    if not os.path.isfile(lint_path) or not os.path.isfile(design_path):
        return []  # absence of the lint itself is caught by CI running it
    rules = lint_rule_ids(read(lint_path))
    if rules is None:
        return ["%s: RULE_IDS tuple not found (doc_lint cross-checks it "
                "against DESIGN.md)" % LINT_TOOL]
    design = read(design_path)
    return [
        "DESIGN.md: ltc_lint rule '%s' (from %s RULE_IDS) is not documented "
        "in the rule table" % (rule, LINT_TOOL)
        for rule in rules if "`%s`" % rule not in design
    ]


def run_checks(root):
    design_path = os.path.join(root, "DESIGN.md")
    errors = []
    if not os.path.isfile(design_path):
        errors.append("DESIGN.md: missing")
        sections = set()
    else:
        sections = design_sections(read(design_path))
        if not sections:
            errors.append("DESIGN.md: no '## §N' section headings found")
    errors += check_citations(root, sections)
    errors += check_markdown_links(root)
    errors += check_flags(root)
    errors += check_lint_rules(root)
    return errors


# ---------------------------------------------------------------------------
# Selftest: the lint's own unit checks, run against a synthetic repo.


def expect(condition, label, failures):
    if condition:
        print("  PASS %s" % label)
    else:
        print("  FAIL %s" % label)
        failures.append(label)


def selftest():
    failures = []
    with tempfile.TemporaryDirectory(prefix="doc_lint_selftest_") as root:
        def write_file(rel, text):
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path) or root, exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)

        write_file("DESIGN.md", "## §1 One\n\nBody.\n\n### §1.1 Sub\n\n"
                   "## §2 Two\n\nSee DESIGN.md §1.\n")
        write_file("ROADMAP.md", "Nothing here.\n")
        write_file("src/io/README.md", "See DESIGN.md §2.\n")
        write_file(
            "README.md",
            "[design](DESIGN.md) [io](src/io/README.md#anchor)\n"
            "[web](https://example.com/x) [frag](#local)\n"
            "### ltc_serve operator flags\n\n"
            "| Flag | Default |\n|---|---|\n"
            "| `--events` | `\"\"` |\n| `--deadline` | `0` |\n\n"
            "## Next\n\nbench: --figure and --reps.\n",
        )
        write_file(
            "src/svc/serve_main.cc",
            'Flag<std::string> FLAG_events("events", "", "replay");\n'
            'Flag<std::string> FLAG_deadline(\n    "deadline", "0", "x");\n',
        )
        write_file(
            "src/exp/suite_main.cc",
            'Flag<std::string> FLAG_figure("figure", "", "suite");\n'
            'Flag<std::int64_t> FLAG_reps("reps", 3, "reps");\n',
        )
        write_file("bench/bench_stream_throughput.cc", "// no flags yet\n")
        write_file("src/good.h", "// DESIGN.md §1 and DESIGN.md section 2.\n")

        print("selftest: clean synthetic repo")
        expect(run_checks(root) == [], "clean repo lints clean", failures)

        print("selftest: section parsing")
        sections = design_sections(read(os.path.join(root, "DESIGN.md")))
        expect(sections == {1, 2}, "headings parsed (§1, §2)", failures)

        print("selftest: dangling citation is caught")
        write_file("src/bad.h", "// DESIGN.md §9 does not exist.\n")
        errors = run_checks(root)
        expect(any("src/bad.h" in e and "§9" in e for e in errors),
               "dangling §9 citation reported", failures)
        os.remove(os.path.join(root, "src/bad.h"))

        print("selftest: broken markdown link is caught")
        write_file("ROADMAP.md", "[gone](missing_file.md)\n")
        errors = run_checks(root)
        expect(any("missing_file.md" in e for e in errors),
               "broken relative link reported", failures)
        write_file("ROADMAP.md", "Nothing here.\n")

        print("selftest: flag extraction and drift")
        flags = defined_flags(read(os.path.join(root, "src/svc/serve_main.cc")))
        expect(flags == ["deadline", "events"],
               "flag names extracted (wrapped literal included)", failures)
        write_file(
            "src/svc/serve_main.cc",
            'Flag<std::string> FLAG_events("events", "", "replay");\n'
            'Flag<std::string> FLAG_deadline("deadline", "0", "x");\n'
            'Flag<bool> FLAG_new_toggle("new_toggle", false, "undoc");\n',
        )
        errors = run_checks(root)
        expect(any("--new_toggle" in e for e in errors),
               "undocumented ltc_serve flag reported", failures)
        write_file(
            "src/exp/suite_main.cc",
            'Flag<std::string> FLAG_figure("figure", "", "suite");\n'
            'Flag<std::int64_t> FLAG_secret("secret", 3, "undoc");\n',
        )
        errors = run_checks(root)
        expect(any("--secret" in e for e in errors),
               "undocumented bench flag reported", failures)
        write_file(
            "src/exp/suite_main.cc",
            'Flag<std::string> FLAG_figure("figure", "", "suite");\n')

        print("selftest: ltc_lint rule table coverage")
        write_file("tools/ltc_lint.py",
                   'RULE_IDS = (\n    "fake-rule",\n    "other-rule",\n)\n')
        errors = run_checks(root)
        expect(any("'fake-rule'" in e for e in errors)
               and any("'other-rule'" in e for e in errors),
               "undocumented lint rules reported", failures)
        write_file("DESIGN.md", "## §1 One\n\nBody.\n\n### §1.1 Sub\n\n"
                   "## §2 Two\n\nSee DESIGN.md §1.\n\n"
                   "Rules: `fake-rule` and `other-rule`.\n")
        errors = run_checks(root)
        expect(not any("ltc_lint rule" in e for e in errors),
               "documented lint rules pass", failures)
        write_file("tools/ltc_lint.py", "def main():\n    return 0\n")
        errors = run_checks(root)
        expect(any("RULE_IDS tuple not found" in e for e in errors),
               "missing RULE_IDS roster reported", failures)

    if failures:
        print("doc_lint selftest: %d FAILED" % len(failures))
        return 1
    print("doc_lint selftest: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the tool's parent)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the lint's own unit checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    errors = run_checks(root)
    if errors:
        for error in errors:
            print(error)
        print("doc_lint: %d problem(s)" % len(errors))
        return 1
    print("doc_lint: OK (citations, links, and flag tables all resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
