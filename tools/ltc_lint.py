#!/usr/bin/env python3
"""Determinism & concurrency lint for the ltc tree (DESIGN.md §14).

Every guarantee this repo ships — byte-identical assignment logs for any
--threads/--shards, bit-exact snapshot recovery — depends on code-level
contracts no compiler checks by default: serialize paths must not iterate
hash containers, persisted floats must round-trip bit-exactly, nothing in
the library may consult ambient randomness or the wall clock, and a
returned Status must never be dropped on the floor. This lint makes those
contracts mechanical.

Rules (ids appear in findings and in suppression comments):

  unordered-iteration  Range-for / .begin() iteration over a
                       std::unordered_map/set inside a determinism-sensitive
                       function (Serialize*/Snapshot*/FormatEventRecord/...).
                       Route through common::SortedKeys instead.
  address-ordering     reinterpret_cast to (u)intptr_t or std::hash over a
                       pointer type: address-based order/hash is different
                       every run (ASLR), so it can never feed a
                       deterministic output.
  banned-randomness    rand()/srand()/drand48()/random()/std::random_device,
                       gettimeofday()/time()/system_clock::now outside
                       common/random.* and common/timer.h — all randomness
                       flows through common::Random (seeded, mixable), all
                       timing through common::Timer (steady_clock).
  float-format         A float conversion other than %.17g in a
                       determinism-sensitive function: %.17g is the shortest
                       printf format that round-trips every finite double.
  unchecked-status     A bare call statement to a function returning
                       Status/StatusOr. The compiler enforces this too
                       ([[nodiscard]] + -Werror in CI); the lint catches it
                       on any compiler and names the rule to suppress.
                       Intentional discards go through LTC_IGNORE_STATUS.
  raw-std-mutex        A naked std::mutex / condition_variable / lock_guard
                       / unique_lock in src/: annotated code uses
                       common::Mutex / MutexLock / CondVar
                       (common/thread_annotations.h) so -Wthread-safety can
                       see the capability.
  nodiscard-status     common/status.h must keep class Status and StatusOr
                       declared [[nodiscard]] (the compile-time half of
                       unchecked-status).

Suppressions, each requiring a justification in the trailing text:
  // ltc-lint: allow(rule-id) <why>          — this line and the next
  // ltc-lint: allow-file(rule-id) <why>     — the whole file

Engine: a libclang pass verifies unchecked-status findings when the clang
python bindings are importable; everything else (and the fallback for
unchecked-status) is a comment/string-stripping, scope-tracking AST-lite
scanner with no dependencies beyond the stdlib, so the lint runs anywhere
the repo builds.

Usage:
    tools/ltc_lint.py [--root REPO_ROOT] [--force-fallback]
    tools/ltc_lint.py --selftest

Exit status 0 when clean, 1 with one line per finding otherwise.
"""

import argparse
import os
import re
import sys
import tempfile

SOURCE_DIRS = ["src", "tests", "bench", "examples"]
SOURCE_EXTS = (".h", ".cc")

# The canonical rule roster. tools/doc_lint.py parses this tuple and
# requires every id to be documented in DESIGN.md §14's rule table, so a
# new rule cannot land undocumented.
RULE_IDS = (
    "unordered-iteration",
    "address-ordering",
    "banned-randomness",
    "float-format",
    "unchecked-status",
    "raw-std-mutex",
    "nodiscard-status",
)

# Function names whose bodies feed persisted, byte-compared artifacts
# (snapshots, the WAL, serialized forecast/scheduler state).
SENSITIVE_FN_RE = re.compile(
    r"^(Serialize\w*|\w*Snapshot\w*|FormatEventRecord|WriteManifest)$")

# Files allowed to touch ambient randomness / the wall clock.
RANDOMNESS_ALLOWED = {
    os.path.join("src", "common", "random.h"),
    os.path.join("src", "common", "random.cc"),
    os.path.join("src", "common", "timer.h"),
}

# The annotated-primitive convention applies to the library; tests and
# benches may use std primitives directly (they are not part of the
# -Wthread-safety surface).
RAW_MUTEX_SCOPE = "src"
RAW_MUTEX_ALLOWED = {os.path.join("src", "common", "thread_annotations.h")}

ALLOW_RE = re.compile(r"ltc-lint:\s*allow\(([a-z0-9-]+)\)")
ALLOW_FILE_RE = re.compile(r"ltc-lint:\s*allow-file\(([a-z0-9-]+)\)")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "do", "else", "try", "catch", "return",
}
SCOPE_KEYWORDS = {"namespace", "class", "struct", "union", "enum"}


class Finding(object):
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.message)


# ---------------------------------------------------------------------------
# AST-lite scanner: comment/string stripping + scope tracking.


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving layout.

    Newlines survive (so line numbers hold) and literal delimiters survive
    (so format strings stay findable as "...": their *contents* are kept for
    '%'-scanning but cannot open comments or braces because the scanner
    below never enters them).
    """
    out = []
    i = 0
    n = len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"' or c == "'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        else:  # inside a literal
            if c == "\\" and nxt:
                # Keep escapes opaque (a \" must not close the literal).
                out.append("\\" + ("\n" if nxt == "\n" else " "))
                i += 2
                continue
            if c == state:
                state = None
            out.append(c)
            i += 1
    return "".join(out)


def collect_allows(text):
    """Per-line and file-level rule suppressions from lint comments."""
    line_allows = {}
    file_allows = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        for rule in ALLOW_FILE_RE.findall(line):
            file_allows.add(rule)
        for rule in ALLOW_RE.findall(line):
            # A suppression covers its own line and the one after it, so it
            # can ride on the preceding comment line.
            line_allows.setdefault(lineno, set()).add(rule)
            line_allows.setdefault(lineno + 1, set()).add(rule)
    return line_allows, file_allows


FN_NAME_RE = re.compile(r"([A-Za-z_~]\w*(?:\s*::\s*[A-Za-z_~]\w*)*)\s*\(")


def _scope_for_pending(pending, enclosing_fn):
    """Classifies the scope a '{' opens, given the text since the last
    statement boundary. Returns (kind, fn_name) with kind in
    {'fn', 'block', 'type', 'ns'}."""
    s = pending.strip()
    first = re.match(r"[A-Za-z_]\w*", s)
    first_word = first.group(0) if first else ""
    if first_word in SCOPE_KEYWORDS:
        return ("ns" if first_word == "namespace" else "type", enclosing_fn)
    if "(" not in s:
        return ("block", enclosing_fn)
    if first_word in CONTROL_KEYWORDS or "](" in s.replace(" ", ""):
        return ("block", enclosing_fn)
    if "=" in s.split("(", 1)[0]:
        # `auto x = expr{...}` style initializer.
        return ("block", enclosing_fn)
    m = FN_NAME_RE.search(s)
    if m is None:
        return ("block", enclosing_fn)
    name = re.split(r"\s*::\s*", m.group(1))[-1]
    if name in CONTROL_KEYWORDS:
        return ("block", enclosing_fn)
    return ("fn", name)


class Statement(object):
    def __init__(self, line, fn, text):
        self.line = line
        self.fn = fn  # innermost enclosing function name ('' at file scope)
        self.text = text


def split_statements(stripped):
    """Statements with their line number and enclosing function.

    A statement is the text between ;/{/} boundaries (paren depth 0 for the
    ';' case, so for(;;) headers stay whole). Range-for and control headers
    are emitted as their own statements when their block opens.
    """
    statements = []
    scope_stack = []  # (kind, fn_name)
    pending = []
    pending_line = [1]
    line = 1
    paren = 0

    def current_fn():
        for kind, name in reversed(scope_stack):
            if kind == "fn":
                return name
        return ""

    def flush(as_statement):
        text = "".join(pending).strip()
        if as_statement and text:
            statements.append(Statement(pending_line[0], current_fn(), text))
        del pending[:]
        pending_line[0] = line

    for c in stripped:
        if c == "\n":
            line += 1
            pending.append(" ")
            if not "".join(pending).strip():
                pending_line[0] = line
            continue
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        elif c == ";" and paren == 0:
            pending.append(c)
            flush(True)
            continue
        elif c == "{" and paren == 0:
            kind, fn = _scope_for_pending("".join(pending), current_fn())
            # Control headers (for/if/while...) are statements in their own
            # right — the range-for header is what unordered-iteration scans.
            flush(kind == "block")
            scope_stack.append((kind, fn))
            continue
        elif c == "}" and paren == 0:
            flush(False)
            if scope_stack:
                scope_stack.pop()
            continue
        pending.append(c)
    flush(False)
    return statements


# ---------------------------------------------------------------------------
# Symbol tables built across the whole tree.


def _template_var_names(text, opener):
    """Names of variables declared with a template type, e.g.
    `std::unordered_map<K, V> name` — brackets matched by hand so nested
    template arguments survive."""
    names = set()
    start = 0
    while True:
        idx = text.find(opener, start)
        if idx < 0:
            break
        i = idx + len(opener)
        depth = 1
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        m = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|,|\))", text[i:])
        if m:
            names.add(m.group(1))
        start = i
    return names


def unordered_vars(all_texts):
    names = set()
    for text in all_texts:
        for opener in ("unordered_map<", "unordered_set<"):
            names |= _template_var_names(text, opener)
    return names


STATUS_DECL_RE = re.compile(
    r"\b(?:Status|StatusOr<[^;{}=()]*>)\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\(")
# Any `Type name(` pair: used to disqualify names that are *also* declared
# with a non-Status return type somewhere (e.g. TaskId AddTask() vs
# StatusOr<TaskId> AddTask(...)) — an ambiguous name would make the
# statement scan guess, so it is skipped instead.
ANY_DECL_RE = re.compile(
    r"\b([A-Za-z_][\w:]*(?:<[^<>;(){}]*>)?)\s+(?:[A-Za-z_]\w*::)*"
    r"([A-Za-z_]\w*)\s*\(")
NOT_A_TYPE = {
    "return", "new", "delete", "throw", "else", "case", "goto", "co_return",
    "co_await", "co_yield", "sizeof", "typedef", "using", "template",
    "typename", "operator", "if", "for", "while", "switch", "do",
}


def status_function_names(all_texts):
    """Names returning Status/StatusOr, minus names that are also declared
    with another return type somewhere (ambiguous overloads would make the
    statement scan guess)."""
    status_fns = set()
    other_fns = set()
    for text in all_texts:
        status_fns |= set(STATUS_DECL_RE.findall(text))
        for type_tok, name in ANY_DECL_RE.findall(text):
            base = type_tok.split("<", 1)[0]
            if base in NOT_A_TYPE or base in ("Status", "StatusOr"):
                continue
            other_fns.add(name)
    return status_fns - other_fns


# ---------------------------------------------------------------------------
# Rules.

ADDRESS_ORDER_RE = re.compile(
    r"reinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>|std::hash\s*<[^<>]*\*\s*>")

RANDOMNESS_RES = [
    (re.compile(r"\b(?:s?rand|drand48|lrand48|mrand48|random)\s*\("),
     "C randomness (use common::Random)"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device (use common::Random)"),
    (re.compile(r"\bgettimeofday\s*\("),
     "wall clock (use common::Timer / stream time)"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall clock (use common::Timer / stream time)"),
    (re.compile(r"\bsystem_clock\s*::\s*now\b"),
     "wall clock (use common::Timer / stream time)"),
]

FLOAT_CONV_RE = re.compile(r"%[-+ #0-9.*]*(?:hh|h|ll|l|L)?[fFeEgG]")

CALL_STMT_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(")

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|condition_variable|lock_guard|unique_lock|scoped_lock)\b")


def _statement_is_whole_call(text, open_paren):
    """True when the call whose '(' sits at `open_paren` spans the rest of
    the statement — i.e. nothing consumes its return value. A chained
    `x.status().CheckOK();` has a trailing member access after the close
    paren and is NOT a whole-statement call."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[i + 1:].strip() == ";"
    return False


def allowed(rule, lineno, line_allows, file_allows):
    return rule in file_allows or rule in line_allows.get(lineno, set())


def lint_text(path, text, unordered, status_fns, findings,
              skip_unchecked_status=False):
    rel_parts = path.replace("\\", "/").split("/")
    stripped = strip_comments_and_strings(text)
    line_allows, file_allows = collect_allows(text)
    statements = split_statements(stripped)

    # --- statement-scoped rules ---
    for stmt in statements:
        sensitive = bool(SENSITIVE_FN_RE.match(stmt.fn))
        if sensitive:
            m = re.match(r"for\s*\(.*?:\s*\*?([A-Za-z_]\w*)\s*\)\s*$",
                         stmt.text)
            it = re.search(r"\b([A-Za-z_]\w*)\s*\.\s*(?:c?begin|c?end)\s*\(",
                           stmt.text)
            var = None
            if m and m.group(1) in unordered:
                var = m.group(1)
            elif it and it.group(1) in unordered:
                var = it.group(1)
            if var and not allowed("unordered-iteration", stmt.line,
                                   line_allows, file_allows):
                findings.append(Finding(
                    path, stmt.line, "unordered-iteration",
                    "iterates unordered container '%s' in "
                    "determinism-sensitive function '%s' (use "
                    "common::SortedKeys)" % (var, stmt.fn)))
            for conv in FLOAT_CONV_RE.findall(stmt.text):
                if conv != "%.17g" and not allowed(
                        "float-format", stmt.line, line_allows, file_allows):
                    findings.append(Finding(
                        path, stmt.line, "float-format",
                        "float format '%s' in determinism-sensitive function "
                        "'%s' (persisted floats use %%.17g — the only format "
                        "that round-trips every double)" % (conv, stmt.fn)))
        if not skip_unchecked_status and stmt.fn and stmt.text.endswith(";"):
            m = CALL_STMT_RE.match(stmt.text)
            if (m and m.group(1) in status_fns
                    and _statement_is_whole_call(stmt.text, m.end() - 1)
                    and not allowed("unchecked-status", stmt.line,
                                    line_allows, file_allows)):
                findings.append(Finding(
                    path, stmt.line, "unchecked-status",
                    "return value of Status-returning '%s' is ignored "
                    "(check it, or wrap in LTC_IGNORE_STATUS with a "
                    "justification)" % m.group(1)))

    # --- line-scoped rules ---
    in_src = rel_parts[0] == "src"
    rel_norm = os.path.join(*rel_parts)
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if ADDRESS_ORDER_RE.search(line) and not allowed(
                "address-ordering", lineno, line_allows, file_allows):
            findings.append(Finding(
                path, lineno, "address-ordering",
                "pointer/address-based ordering or hashing (ASLR makes this "
                "different every run)"))
        if rel_norm not in RANDOMNESS_ALLOWED:
            for rx, what in RANDOMNESS_RES:
                if rx.search(line) and not allowed(
                        "banned-randomness", lineno, line_allows, file_allows):
                    findings.append(Finding(
                        path, lineno, "banned-randomness", what))
        if (in_src and rel_norm not in RAW_MUTEX_ALLOWED
                and RAW_MUTEX_RE.search(line)
                and not allowed("raw-std-mutex", lineno, line_allows,
                                file_allows)):
            findings.append(Finding(
                path, lineno, "raw-std-mutex",
                "raw std synchronisation primitive in src/ (use "
                "common::Mutex / MutexLock / CondVar from "
                "common/thread_annotations.h so -Wthread-safety applies)"))


def check_nodiscard_status(root, findings):
    path = os.path.join(root, "src", "common", "status.h")
    if not os.path.isfile(path):
        findings.append(Finding(path, 1, "nodiscard-status",
                                "src/common/status.h is missing"))
        return
    text = read(path)
    for cls in ("Status", "StatusOr"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+%s\b" % cls, text):
            findings.append(Finding(
                path, 1, "nodiscard-status",
                "class %s must be declared [[nodiscard]] (the compile-time "
                "half of the unchecked-status rule)" % cls))


# ---------------------------------------------------------------------------
# Optional libclang verification for unchecked-status.


def try_libclang():
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def libclang_unchecked_status(root, files, findings):
    """AST-accurate unchecked-status: a CALL_EXPR of static type
    Status/StatusOr whose parent is a compound statement (i.e. the value is
    the whole statement) is a finding. Suppression comments still apply."""
    import clang.cindex as ci

    index = ci.Index.create()
    args = ["-std=c++17", "-I", os.path.join(root, "src"),
            "-Wno-everything"]
    for path in files:
        try:
            tu = index.parse(path, args=args)
        except ci.TranslationUnitLoadError:
            continue
        text = read(path)
        line_allows, file_allows = collect_allows(text)

        def walk(node, parent_kind):
            if (node.kind == ci.CursorKind.CALL_EXPR
                    and parent_kind == ci.CursorKind.COMPOUND_STMT
                    and node.location.file is not None
                    and os.path.samefile(node.location.file.name, path)):
                t = node.type.spelling
                if (t == "Status" or t.endswith("::Status")
                        or "StatusOr<" in t):
                    if not allowed("unchecked-status", node.location.line,
                                   line_allows, file_allows):
                        findings.append(Finding(
                            path, node.location.line, "unchecked-status",
                            "return value of Status-returning '%s' is "
                            "ignored (libclang)" % node.spelling))
            for child in node.get_children():
                walk(child, node.kind)

        walk(tu.cursor, None)


# ---------------------------------------------------------------------------
# Driver.


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def iter_source_files(root):
    for d in SOURCE_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def run_checks(root, force_fallback=False):
    files = list(iter_source_files(root))
    texts = {path: read(path) for path in files}
    stripped_all = [strip_comments_and_strings(t) for t in texts.values()]
    unordered = unordered_vars(stripped_all)
    status_fns = status_function_names(stripped_all)

    use_libclang = (not force_fallback) and try_libclang()
    findings = []
    for path in files:
        lint_text(os.path.relpath(path, root), texts[path], unordered,
                  status_fns, findings,
                  skip_unchecked_status=use_libclang)
    if use_libclang:
        libclang_unchecked_status(root, files, findings)
    check_nodiscard_status(root, findings)
    mode = "libclang" if use_libclang else "regex/AST-lite fallback"
    return findings, mode


# ---------------------------------------------------------------------------
# Selftest: one positive and one negative fixture per rule, against a
# synthetic tree (mirrors doc_lint.py --selftest).


def expect(condition, label, failures):
    if condition:
        print("  PASS %s" % label)
    else:
        print("  FAIL %s" % label)
        failures.append(label)


def _fixture_findings(files, failures_root):
    with tempfile.TemporaryDirectory(prefix="ltc_lint_selftest_") as root:
        for rel, text in files.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
        # Selftest always exercises the fallback engine — it must behave
        # identically with or without libclang installed.
        findings, _ = run_checks(root, force_fallback=True)
        return findings


STATUS_H = (
    "namespace ltc {\n"
    "class [[nodiscard]] Status {};\n"
    "template <typename T> class [[nodiscard]] StatusOr {};\n"
    "}\n"
)


def selftest():
    failures = []

    def rules_of(findings):
        return sorted(set(f.rule for f in findings))

    print("selftest: unordered-iteration")
    base = {"src/common/status.h": STATUS_H}
    pos = dict(base)
    pos["src/svc/engine.cc"] = (
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> claims_;\n"
        "void SerializeTo(std::string* out) {\n"
        "  for (const auto& [k, v] : claims_) { out->append(\"x\"); }\n"
        "}\n")
    f = _fixture_findings(pos, failures)
    expect(any(x.rule == "unordered-iteration" and x.line == 4 for x in f),
           "hash-map iteration in SerializeTo flagged", failures)
    neg = dict(base)
    neg["src/svc/engine.cc"] = (
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> claims_;\n"
        "void SerializeTo(std::string* out) {\n"
        "  const auto keys = SortedKeys(claims_);\n"
        "  for (const auto& k : keys) { out->append(\"x\"); }\n"
        "}\n"
        "void HandleEvent() {\n"
        "  for (const auto& [k, v] : claims_) { Touch(k); }\n"
        "}\n")
    f = _fixture_findings(neg, failures)
    expect(not any(x.rule == "unordered-iteration" for x in f),
           "sorted-keys walk and non-sensitive iteration pass", failures)

    print("selftest: address-ordering")
    pos = dict(base)
    pos["src/a.cc"] = (
        "bool Less(const T* a, const T* b) {\n"
        "  return reinterpret_cast<uintptr_t>(a) <\n"
        "         reinterpret_cast<uintptr_t>(b);\n"
        "}\n")
    f = _fixture_findings(pos, failures)
    expect(any(x.rule == "address-ordering" for x in f),
           "uintptr_t cast flagged", failures)
    neg = dict(base)
    neg["src/a.cc"] = "bool Less(int a, int b) { return a < b; }\n"
    f = _fixture_findings(neg, failures)
    expect(not any(x.rule == "address-ordering" for x in f),
           "value comparison passes", failures)

    print("selftest: banned-randomness")
    pos = dict(base)
    pos["src/gen/x.cc"] = "int Roll() { return rand() % 6; }\n"
    f = _fixture_findings(pos, failures)
    expect(any(x.rule == "banned-randomness" for x in f),
           "rand() flagged", failures)
    neg = dict(base)
    neg["src/common/random.cc"] = "int Roll() { return rand() % 6; }\n"
    neg["src/gen/x.cc"] = (
        "// rand() in a comment is fine\n"
        "int Roll(Random* rng) { return rng->Uniform(6); }\n")
    f = _fixture_findings(neg, failures)
    expect(not any(x.rule == "banned-randomness" for x in f),
           "common/random.cc and comments pass", failures)

    print("selftest: float-format")
    pos = dict(base)
    pos["src/svc/snap.cc"] = (
        "void SerializeTo(std::string* out) {\n"
        "  out->append(StrFormat(\"clock %g\\n\", clock_));\n"
        "}\n")
    f = _fixture_findings(pos, failures)
    expect(any(x.rule == "float-format" for x in f),
           "%g in SerializeTo flagged", failures)
    neg = dict(base)
    neg["src/svc/snap.cc"] = (
        "void SerializeTo(std::string* out) {\n"
        "  out->append(StrFormat(\"clock %.17g count %lld\\n\", c_, n_));\n"
        "}\n"
        "Status Report() { return Log(StrFormat(\"%.3f s\", dt)); }\n")
    f = _fixture_findings(neg, failures)
    expect(not any(x.rule == "float-format" for x in f),
           "%.17g and non-sensitive %.3f pass", failures)

    print("selftest: unchecked-status")
    pos = dict(base)
    pos["src/io/wal.cc"] = (
        "Status Flush();\n"
        "void Close() {\n"
        "  Flush();\n"
        "}\n")
    f = _fixture_findings(pos, failures)
    expect(any(x.rule == "unchecked-status" for x in f),
           "bare Status call flagged", failures)
    neg = dict(base)
    neg["src/io/wal.cc"] = (
        "Status Flush();\n"
        "StatusOr<int> Parse();\n"
        "TaskId AddTask();\n"          # also declared returning Status below
        "Status AddTask(int id);\n"    # -> ambiguous name, never flagged
        "Status Close() {\n"
        "  LTC_RETURN_IF_ERROR(Flush());\n"
        "  const Status s = Flush();\n"
        "  LTC_IGNORE_STATUS(Flush());\n"
        "  Parse().status().CheckOK();\n"  # chained: the value IS consumed
        "  AddTask(3);\n"
        "  return Flush();\n"
        "}\n")
    f = _fixture_findings(neg, failures)
    expect(not any(x.rule == "unchecked-status" for x in f),
           "checked/ignored/chained/ambiguous Status passes", failures)

    print("selftest: raw-std-mutex")
    pos = dict(base)
    pos["src/net/q.h"] = "#include <mutex>\nstd::mutex mu_;\n"
    f = _fixture_findings(pos, failures)
    expect(any(x.rule == "raw-std-mutex" for x in f),
           "naked std::mutex in src/ flagged", failures)
    neg = dict(base)
    neg["src/net/q.h"] = "Mutex mu_;\n"
    neg["tests/q_test.cc"] = "#include <mutex>\nstd::mutex test_mu;\n"
    f = _fixture_findings(neg, failures)
    expect(not any(x.rule == "raw-std-mutex" for x in f),
           "common::Mutex and test-side std::mutex pass", failures)

    print("selftest: nodiscard-status")
    pos = {"src/common/status.h":
           "namespace ltc { class Status {}; "
           "template <typename T> class StatusOr {}; }\n"}
    f = _fixture_findings(pos, failures)
    expect(any(x.rule == "nodiscard-status" for x in f),
           "missing [[nodiscard]] flagged", failures)
    f = _fixture_findings(dict(base), failures)
    expect(not any(x.rule == "nodiscard-status" for x in f),
           "[[nodiscard]] classes pass", failures)

    print("selftest: suppression comments")
    sup = dict(base)
    sup["src/svc/engine.cc"] = (
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> claims_;\n"
        "void SerializeTo(std::string* out) {\n"
        "  // ltc-lint: allow(unordered-iteration) order-independent count\n"
        "  for (const auto& [k, v] : claims_) { n += v; }\n"
        "}\n")
    f = _fixture_findings(sup, failures)
    expect(not any(x.rule == "unordered-iteration" for x in f),
           "line suppression honoured", failures)
    sup["src/svc/engine.cc"] = (
        "// ltc-lint: allow-file(unordered-iteration) legacy serializer\n"
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> claims_;\n"
        "void SerializeTo(std::string* out) {\n"
        "  for (const auto& [k, v] : claims_) { n += v; }\n"
        "}\n")
    f = _fixture_findings(sup, failures)
    expect(not any(x.rule == "unordered-iteration" for x in f),
           "file suppression honoured", failures)

    if failures:
        print("ltc_lint selftest: %d FAILED" % len(failures))
        return 1
    print("ltc_lint selftest: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the tool's parent)")
    parser.add_argument("--force-fallback", action="store_true",
                        help="skip libclang even when importable")
    parser.add_argument("--selftest", action="store_true",
                        help="run the lint's own unit checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings, mode = run_checks(root, force_fallback=args.force_fallback)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if findings:
        for finding in findings:
            print(finding.render(root))
        print("ltc_lint: %d finding(s) [engine: %s]" % (len(findings), mode))
        return 1
    print("ltc_lint: OK — determinism contract holds [engine: %s]" % mode)
    return 0


if __name__ == "__main__":
    sys.exit(main())
