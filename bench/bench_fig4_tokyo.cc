// Fig. 4d/4h/4l — latency / runtime / memory on the (simulated) Foursquare
// Tokyo dataset while varying eps in {0.06..0.22} (Table V: |T| = 9317,
// |W| = 573703, K = 6, accuracy ~ N(0.86, 0.05)).
//
// Thin wrapper: equivalent to  bench_suite --figure=fig4_tokyo
// Run:  ./build/bench/bench_fig4_tokyo [--paper] [--reps=30] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig4_tokyo"});
}
