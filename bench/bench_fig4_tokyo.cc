// Fig. 4d/4h/4l — latency / runtime / memory on the (simulated) Foursquare
// Tokyo dataset while varying eps in {0.06..0.22} (Table V: |T| = 9317,
// |W| = 573703, K = 6, accuracy ~ N(0.86, 0.05)).
//
// Run:  ./build/bench/bench_fig4_tokyo [--paper] [--reps=30]

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/foursquare.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  std::vector<ltc::bench::BenchCase> cases;
  for (double epsilon : {0.06, 0.10, 0.14, 0.18, 0.22}) {
    cases.push_back(ltc::bench::BenchCase{
        ltc::StrFormat("%.2f", epsilon), [epsilon](std::uint64_t seed) {
          ltc::gen::FoursquareConfig cfg;
          cfg.city = ltc::gen::TokyoPreset();
          cfg.scale = ltc::bench::ScaleFactor();
          cfg.epsilon = epsilon;
          cfg.seed = seed;
          return ltc::gen::GenerateFoursquareLike(cfg);
        }});
  }

  const auto status = ltc::bench::RunFigureBench("fig4_tokyo", "eps", cases,
                                                 options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
