// Extension experiment: how close does each algorithm get to the
// instance-specific lower bound (algo::ComputeLowerBound)?
//
// Reports, per synthetic workload size, the supply/work bounds and each
// algorithm's gap factor (latency / combined bound). A gap of 1.00 means the
// run is pinned by the straggler supply bound — the regime where all
// policies tie (see EXPERIMENTS.md).
//
// Run:  ./build/bench/bench_lower_bound [--reps=3]

#include <cstdio>
#include <map>

#include "algo/lower_bound.h"
#include "algo/registry.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  const auto roster = ltc::algo::StandardAlgorithms();
  std::vector<std::string> header = {"|T|", "supplyLB", "workLB"};
  for (const auto& name : roster) header.push_back(name + " gap");
  ltc::TablePrinter table(header);

  for (std::int64_t paper_tasks : {1000, 2000, 3000, 4000, 5000}) {
    const std::int64_t tasks = ltc::bench::ScaledCount(paper_tasks);
    double supply_sum = 0;
    double work_sum = 0;
    std::map<std::string, double> gap_sum;
    for (std::int64_t rep = 0; rep < options->reps; ++rep) {
      ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
      cfg.num_tasks = tasks;
      cfg.seed = options->seed + static_cast<std::uint64_t>(rep) * 449;
      auto instance = ltc::gen::GenerateSynthetic(cfg);
      instance.status().CheckOK();
      auto index = ltc::model::EligibilityIndex::Build(&instance.value());
      index.status().CheckOK();
      auto bound = ltc::algo::ComputeLowerBound(*instance, *index);
      bound.status().CheckOK();
      supply_sum += static_cast<double>(bound->supply_bound);
      work_sum += static_cast<double>(bound->work_bound);
      for (const auto& name : roster) {
        auto metrics = ltc::sim::RunAlgorithm(name, *instance, *index);
        metrics.status().CheckOK();
        if (metrics->completed && bound->combined > 0) {
          gap_sum[name] += static_cast<double>(metrics->latency) /
                           static_cast<double>(bound->combined);
        }
      }
    }
    const double reps = static_cast<double>(options->reps);
    std::vector<std::string> row = {
        ltc::StrFormat("%lld", static_cast<long long>(paper_tasks)),
        ltc::StrFormat("%.1f", supply_sum / reps),
        ltc::StrFormat("%.1f", work_sum / reps)};
    for (const auto& name : roster) {
      row.push_back(ltc::StrFormat("%.2f", gap_sum[name] / reps));
    }
    table.AddRow(row);
  }
  std::printf("\n-- gap to the instance lower bound (latency / LB) --\n%s",
              table.Render().c_str());
  const auto status =
      table.WriteCsv(options->out_dir + "/lower_bound_gaps.csv");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
