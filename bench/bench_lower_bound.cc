// Extension experiment: how close does each algorithm get to the
// instance-specific lower bound (algo::ComputeLowerBound)?
//
// Reports, per synthetic workload size, the supply/work bounds and each
// algorithm's gap factor (latency / combined bound). A gap of 1.00 means the
// run is pinned by the straggler supply bound — the regime where all
// policies tie (see EXPERIMENTS.md).
//
// Thin wrapper: equivalent to  bench_suite --figure=lower_bound
// Run:  ./build/bench/bench_lower_bound [--reps=3] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"lower_bound"});
}
