// End-to-end socket ingest benchmark: a forked child runs the durable
// server (RecoverableService + net::IngestServer over a Unix-domain
// socket); the parent connects an IngestClient and streams a synthetic
// arrival log in fixed-size frames at wire level, so the measured
// events/sec covers framing, admission, the bounded queue, the WAL
// (fsync'd group commits), the engine, and the final drain.
//
//   ./build/bench/bench_serve_e2e --json=serve_e2e.json
//
// Every case also asserts the zero-loss contract the server advertises
// (net/server.h): the finish ack's admitted total equals the events sent —
// through backpressure retries in the small-queue case — and the child's
// assignment log is byte-identical to an in-process replay of the same
// stream under the same options. The checked-in baseline is BENCH_PR7.json;
// tools/bench_compare.py gates CI's recovery job against its
// events_per_sec with a wide floor tolerance (wall-clock, machine-bound).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "gen/stream.h"
#include "io/workload_io.h"
#include "net/client.h"
#include "net/server.h"
#include "svc/recoverable.h"
#include "svc/serve_main.h"

namespace ltc {
namespace {

Flag<std::int64_t> FLAG_tasks("tasks", 1000, "task arrivals per case");
Flag<std::int64_t> FLAG_workers("workers", 49000, "worker arrivals per case");
Flag<double> FLAG_deadline("deadline", 0.25, "batching deadline");
Flag<std::int64_t> FLAG_seed("seed", 1, "stream RNG seed");
Flag<std::string> FLAG_json("json", "",
                            "write the machine-readable JSON summary here");
Flag<std::string> FLAG_state_root(
    "state_root", "/tmp",
    "directory for per-case sockets and durable state (removed after)");

struct E2eCase {
  std::string label;
  int shards = 1;
  std::size_t queue_capacity = 65536;
  std::size_t frame_events = 512;
};

struct E2eResult {
  double events_per_sec = 0.0;
  std::int64_t events = 0;
  std::int64_t frames_retried = 0;
  bool zero_loss = false;
  bool log_identical = false;
};

svc::StreamOptions CaseOptions(const E2eCase& c) {
  svc::StreamOptions options;
  options.algorithm = "LAF";
  options.batch_deadline = FLAG_deadline.Get();
  options.shards = c.shards;
  options.threads = 1;
  options.validate = false;
  options.world = geo::Rect{0.0, 0.0, 1000.0, 1000.0};
  return options;
}

/// The child half: serve the socket until the parent's finish frame, then
/// Finish the service and write the assignment log. Never returns.
[[noreturn]] void RunServerChild(const io::EventLog& header,
                                 const E2eCase& c,
                                 const std::string& listen,
                                 const std::string& state_dir,
                                 const std::string& log_path) {
  svc::RecoverableService::Options sopts;
  sopts.state_dir = state_dir;
  sopts.stream = CaseOptions(c);
  sopts.wal.group_commit = 1024;
  sopts.snapshot_every = 0;
  auto service = svc::RecoverableService::Open(header, sopts);
  if (!service.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 service.status().ToString().c_str());
    std::_Exit(2);
  }
  net::ServerOptions nopts;
  nopts.listen = listen;
  nopts.queue_capacity = c.queue_capacity;
  net::IngestServer server(service.value().get(), nopts);
  const Status served = server.Serve();
  if (!served.ok()) {
    std::fprintf(stderr, "server: %s\n", served.ToString().c_str());
    std::_Exit(2);
  }
  auto metrics = service.value()->Finish();
  if (!metrics.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 metrics.status().ToString().c_str());
    std::_Exit(2);
  }
  const std::string log = svc::RenderAssignmentLog(
      sopts.stream, service.value()->assignments(), metrics.value());
  const Status written = io::WriteFile(log_path, log);
  if (!written.ok()) {
    std::fprintf(stderr, "server: %s\n", written.ToString().c_str());
    std::_Exit(2);
  }
  if (server.counters().queue_high_water > c.queue_capacity) {
    std::fprintf(stderr, "server: queue exceeded its capacity\n");
    std::_Exit(2);
  }
  std::_Exit(0);
}

StatusOr<std::unique_ptr<net::IngestClient>> ConnectWithRetry(
    const std::string& address) {
  Status last = Status::Unavailable("never attempted");
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto client = net::IngestClient::Connect(address);
    if (client.ok()) return client;
    last = client.status();
    ::usleep(25 * 1000);
  }
  return last.WithContext("server did not come up");
}

StatusOr<E2eResult> RunCase(const E2eCase& c) {
  gen::StreamConfig cfg;
  cfg.num_tasks = FLAG_tasks.Get();
  cfg.num_workers = FLAG_workers.Get();
  cfg.seed = static_cast<std::uint64_t>(FLAG_seed.Get());
  LTC_ASSIGN_OR_RETURN(const io::EventLog log, gen::GenerateStreamEvents(cfg));
  io::EventLog header = log;
  header.events.clear();

  const std::string root = StrFormat(
      "%s/ltc_e2e_%s_%d", FLAG_state_root.Get().c_str(), c.label.c_str(),
      static_cast<int>(::getpid()));
  std::filesystem::remove_all(root);
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IOError(
        StrFormat("create %s: %s", root.c_str(), ec.message().c_str()));
  }
  const std::string listen = "unix:" + root + "/sock";
  const std::string state_dir = root + "/state";
  const std::string log_path = root + "/assignments.log";

  const pid_t child = ::fork();
  if (child < 0) return Status::Internal("fork failed");
  if (child == 0) RunServerChild(header, c, listen, state_dir, log_path);

  E2eResult result;
  {
    LTC_ASSIGN_OR_RETURN(auto client, ConnectWithRetry(listen));
    Stopwatch watch;
    std::vector<io::Event> frame;
    frame.reserve(c.frame_events);
    for (const io::Event& e : log.events) {
      frame.push_back(e);
      if (frame.size() == c.frame_events) {
        LTC_RETURN_IF_ERROR(client->SendEvents(frame));
        frame.clear();
      }
    }
    LTC_RETURN_IF_ERROR(client->SendEvents(frame));
    LTC_ASSIGN_OR_RETURN(const net::Ack finish, client->Finish());
    const double seconds = watch.ElapsedSeconds();
    result.events = log.num_events();
    result.events_per_sec =
        seconds > 0.0 ? static_cast<double>(result.events) / seconds : 0.0;
    result.frames_retried = client->frames_retried();
    result.zero_loss =
        finish.admitted == static_cast<std::uint64_t>(log.num_events());
  }

  int wstatus = 0;
  if (::waitpid(child, &wstatus, 0) != child || !WIFEXITED(wstatus) ||
      WEXITSTATUS(wstatus) != 0) {
    return Status::Internal(
        StrFormat("server child failed (wstatus %d)", wstatus));
  }

  // The wire-served log must match an in-process replay bit for bit.
  LTC_ASSIGN_OR_RETURN(const std::string served, io::ReadFile(log_path));
  const svc::StreamOptions options = CaseOptions(c);
  LTC_ASSIGN_OR_RETURN(auto engine,
                       svc::ShardedStreamEngine::Create(header, options));
  for (const io::Event& e : log.events) {
    LTC_RETURN_IF_ERROR(engine->OnEvent(e));
  }
  LTC_ASSIGN_OR_RETURN(const svc::StreamMetrics metrics, engine->Finish());
  const std::string golden =
      svc::RenderAssignmentLog(options, engine->assignments(), metrics);
  result.log_identical = served == golden;

  std::filesystem::remove_all(root);
  return result;
}

int Main(int argc, char** argv) {
  const Status parsed = ParseCommandLine(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.IsFailedPrecondition() ? 0 : 1;
  }

  // The backpressure case shrinks the queue below a burst's size so frames
  // bounce (resource-exhausted) and the client's retry loop has to absorb
  // them; zero_loss then proves admitted-exactly-once end to end.
  const std::vector<E2eCase> cases = {
      {"wire@s1", 1, 65536, 512},
      {"wire@s4", 4, 65536, 512},
      {"backpressure@s1", 1, 192, 64},
  };

  std::string json =
      "{\n  \"figure\": \"serve_e2e\",\n  \"reps\": 1,\n  \"cases\": [\n";
  bool first = true;
  bool all_ok = true;
  for (const E2eCase& c : cases) {
    auto result = RunCase(c);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.label.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    const E2eResult& r = result.value();
    std::printf(
        "%-16s %10.0f events/s  %lld event(s)  %lld frame retr(ies)  "
        "zero_loss=%s  log_identical=%s\n",
        c.label.c_str(), r.events_per_sec,
        static_cast<long long>(r.events),
        static_cast<long long>(r.frames_retried),
        r.zero_loss ? "yes" : "NO", r.log_identical ? "yes" : "NO");
    all_ok = all_ok && r.zero_loss && r.log_identical;
    json += StrFormat(
        "%s    {\"label\": \"%s\", \"algorithms\": [\n"
        "      {\"name\": \"LAF\", \"events_per_sec\": %.1f, "
        "\"events\": %lld, \"frames_retried\": %lld, \"zero_loss\": %d, "
        "\"log_identical\": %d}\n    ]}",
        first ? "" : ",\n", c.label.c_str(), r.events_per_sec,
        static_cast<long long>(r.events),
        static_cast<long long>(r.frames_retried), r.zero_loss ? 1 : 0,
        r.log_identical ? 1 : 0);
    first = false;
  }
  json += "\n  ]\n}\n";

  if (!FLAG_json.Get().empty()) {
    const Status written = io::WriteFile(FLAG_json.Get(), json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("JSON summary written to %s\n", FLAG_json.Get().c_str());
  }
  if (!all_ok) {
    std::fprintf(stderr,
                 "bench_serve_e2e: a zero-loss or byte-identity check "
                 "FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ltc

int main(int argc, char** argv) { return ltc::Main(argc, argv); }
