// Fig. 3b/3f/3j — latency / runtime / memory while varying the worker
// capacity K in {4..8} (|T| = 3000, |W| = 40000, eps = 0.1; Table IV).
//
// Thin wrapper: equivalent to  bench_suite --figure=fig3_capacity
// Run:  ./build/bench/bench_fig3_capacity [--paper] [--reps=30] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig3_capacity"});
}
