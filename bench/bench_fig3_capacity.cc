// Fig. 3b/3f/3j — latency / runtime / memory while varying the worker
// capacity K in {4..8} (|T| = 3000, |W| = 40000, eps = 0.1; Table IV).
//
// Run:  ./build/bench/bench_fig3_capacity [--paper] [--reps=30]

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  std::vector<ltc::bench::BenchCase> cases;
  for (std::int32_t capacity : {4, 5, 6, 7, 8}) {
    cases.push_back(ltc::bench::BenchCase{
        ltc::StrFormat("%d", capacity), [capacity](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
          cfg.capacity = capacity;
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }

  const auto status = ltc::bench::RunFigureBench("fig3_capacity", "K", cases,
                                                 options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
