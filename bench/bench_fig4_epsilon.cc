// Fig. 4a/4e/4i — latency / runtime / memory while varying the tolerable
// error rate eps in {0.06, 0.10, 0.14, 0.18, 0.22} on the synthetic default
// workload (Table IV).
//
// Run:  ./build/bench/bench_fig4_epsilon [--paper] [--reps=30]

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  std::vector<ltc::bench::BenchCase> cases;
  for (double epsilon : {0.06, 0.10, 0.14, 0.18, 0.22}) {
    cases.push_back(ltc::bench::BenchCase{
        ltc::StrFormat("%.2f", epsilon), [epsilon](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
          cfg.epsilon = epsilon;
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }

  const auto status = ltc::bench::RunFigureBench("fig4_epsilon", "eps", cases,
                                                 options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
