// Fig. 4a/4e/4i — latency / runtime / memory while varying the tolerable
// error rate eps in {0.06, 0.10, 0.14, 0.18, 0.22} on the synthetic default
// workload (Table IV).
//
// Thin wrapper: equivalent to  bench_suite --figure=fig4_epsilon
// Run:  ./build/bench/bench_fig4_epsilon [--paper] [--reps=30] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig4_epsilon"});
}
