// Extension experiment: empirical validation of the Hoeffding guarantee
// behind Definition 4 — once a task accumulates Acc* >= delta = 2 ln(1/eps),
// weighted majority voting errs with probability < eps.
//
// For each eps, completes a synthetic workload with AAM, then simulates
// --trials voting rounds per task and reports the observed error rates
// against the promised bound.
//
// Thin wrapper: equivalent to  bench_suite --figure=error_rate
// Run:  ./build/bench/bench_error_rate [--reps=3] [--trials=2000]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"error_rate"});
}
