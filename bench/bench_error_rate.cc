// Extension experiment: empirical validation of the Hoeffding guarantee
// behind Definition 4 — once a task accumulates Acc* >= delta = 2 ln(1/eps),
// weighted majority voting errs with probability < eps.
//
// For each eps, completes a synthetic workload with AAM, then simulates
// `trials` voting rounds per task and reports the observed error rates
// against the promised bound.
//
// Run:  ./build/bench/bench_error_rate [--reps=3] [--trials=2000]

#include <cstdio>

#include "algo/registry.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/table.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"
#include "model/voting.h"
#include "sim/engine.h"

namespace {

ltc::Flag<std::int64_t> FLAG_trials("trials", 2000,
                                    "voting trials per task and rep");

}  // namespace

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  ltc::TablePrinter table({"eps", "delta", "empirical error", "worst task",
                           "bound holds"});
  for (double epsilon : {0.06, 0.10, 0.14, 0.18, 0.22}) {
    double err_sum = 0;
    double worst = 0;
    for (std::int64_t rep = 0; rep < options->reps; ++rep) {
      ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
      cfg.num_tasks = ltc::bench::ScaledCount(1000);
      cfg.num_workers = ltc::bench::ScaledCount(20000);
      cfg.epsilon = epsilon;
      cfg.seed = options->seed + static_cast<std::uint64_t>(rep) * 977;
      auto instance = ltc::gen::GenerateSynthetic(cfg);
      if (!instance.ok()) {
        std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
        return 1;
      }
      auto index = ltc::model::EligibilityIndex::Build(&instance.value());
      if (!index.ok()) {
        std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
        return 1;
      }
      auto scheduler = ltc::algo::MakeOnlineScheduler("AAM", cfg.seed);
      scheduler.status().CheckOK();
      (*scheduler)->Init(*instance, *index).CheckOK();
      std::vector<ltc::model::TaskId> assigned;
      for (const auto& w : instance->workers) {
        if ((*scheduler)->Done()) break;
        (*scheduler)->OnArrival(w, &assigned).CheckOK();
      }
      auto outcome = ltc::model::SimulateVoting(
          *instance, (*scheduler)->arrangement(), FLAG_trials.Get(),
          cfg.seed + 1);
      outcome.status().CheckOK();
      err_sum += outcome->empirical_error_rate;
      worst = std::max(worst, outcome->max_task_error_rate);
    }
    const double mean_err = err_sum / static_cast<double>(options->reps);
    table.AddRow({ltc::StrFormat("%.2f", epsilon),
                  ltc::StrFormat("%.3f", 2.0 * std::log(1.0 / epsilon)),
                  ltc::StrFormat("%.5f", mean_err),
                  ltc::StrFormat("%.5f", worst),
                  worst < epsilon ? "yes" : "NO"});
  }
  std::printf("\n-- error-rate validation (Hoeffding bound) --\n%s",
              table.Render().c_str());
  const auto status =
      table.WriteCsv(options->out_dir + "/error_rate_validation.csv");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
