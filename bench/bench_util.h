// Shared harness for the figure-reproduction bench binaries.
//
// Each bench binary declares the factor sweep of one paper-figure column
// (e.g. Fig. 3a/e/i = latency/runtime/memory vs |T|) as a list of
// BenchCase's; the harness runs every algorithm of the paper's roster on
// `reps` freshly-seeded instances per case, and emits three paper-style
// tables — mean latency (max worker index), mean runtime, mean peak memory —
// plus CSVs under results/.
//
// Common flags (defined in bench_util.cc):
//   --paper      run at the paper's full Table IV/V factors instead of the
//                1/10 laptop scale
//   --reps=N     repetitions per point (paper: 30; default: 3)
//   --seed=S     base RNG seed
//   --out_dir=D  CSV output directory (default: results)
//   --skip=A,B   comma-separated algorithms to skip (e.g. MCF-LTC at the
//                largest scalability points)
//   --cases=L,M  only run the listed case labels (CI smoke / quick A-B runs)
//   --json=FILE  also emit a machine-readable JSON summary (BENCH_*.json)

#ifndef LTC_BENCH_BENCH_UTIL_H_
#define LTC_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "gen/synthetic.h"
#include "model/problem.h"

namespace ltc {
namespace bench {

/// One x-axis point of a figure: a label and an instance factory.
struct BenchCase {
  /// Factor value as printed on the x axis ("1000", "0.06", ...).
  std::string label;
  /// Builds the instance for one repetition (seed varies per rep).
  std::function<StatusOr<model::ProblemInstance>(std::uint64_t seed)> make;
};

/// Harness configuration resolved from flags.
struct BenchOptions {
  std::int64_t reps = 3;
  std::uint64_t seed = 1;
  std::string out_dir = "results";
  std::vector<std::string> skip;  // algorithm names to skip
  bool paper_scale = false;
  /// When non-empty, only run cases whose label is listed (--cases=a,b).
  std::vector<std::string> case_filter;
  /// When non-empty, write a machine-readable JSON summary of the run —
  /// per case and algorithm: mean latency, runtime (s), peak memory (MiB),
  /// completed/total runs — to this path (--json=FILE). This is the format
  /// of the checked-in BENCH_*.json perf baselines.
  std::string json_path;
};

/// Parses the common bench flags (call from main before building cases).
/// Returns FailedPrecondition when --help was requested.
StatusOr<BenchOptions> ParseBenchFlags(int argc, char** argv);

/// True when --paper was passed (full Table IV/V factors).
bool PaperScale();

/// The 1/10 laptop scale factor applied when --paper is absent.
double ScaleFactor();

/// Table IV's bold default factors, scaled by ScaleFactor(): counts scale
/// linearly, the grid side by sqrt(scale) so worker/task densities — which
/// drive feasibility and eligibility degrees — match the paper's setup.
gen::SyntheticConfig BaseSyntheticConfig();

/// Scales a paper-level count by ScaleFactor() (at least 1).
std::int64_t ScaledCount(std::int64_t paper_value);

/// Runs the sweep and prints/writes the three metric tables.
/// `figure` names the output files, e.g. "fig3_tasks" ->
/// results/fig3_tasks_latency.csv, ..._runtime.csv, ..._memory.csv.
Status RunFigureBench(const std::string& figure, const std::string& factor,
                      const std::vector<BenchCase>& cases,
                      const BenchOptions& options);

/// Like RunFigureBench but with an explicit algorithm roster (ablations).
Status RunFigureBenchWithAlgorithms(const std::string& figure,
                                    const std::string& factor,
                                    const std::vector<BenchCase>& cases,
                                    const std::vector<std::string>& algorithms,
                                    const BenchOptions& options);

}  // namespace bench
}  // namespace ltc

#endif  // LTC_BENCH_BENCH_UTIL_H_
