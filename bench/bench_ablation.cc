// Ablation studies for the design choices DESIGN.md calls out:
//
//   1. MCF-LTC batch size (the paper's own Sec. V-B1 discussion attributes
//      MCF-LTC's occasional losses to batch size): batch_factor in
//      {0.25, 0.5, 1.0, 2.0, 4.0} x m, plus tie-break/early-exit toggles.
//   2. Accuracy function: paper sigmoid vs hard step vs flat (no distance).
//   3. AAM's switching rule vs its two pure halves (LGF-only / LRF-only).
//   4. dmax sensitivity: {10, 20, 30, 40, 50} grid units.
//
// Thin wrapper: equivalent to  bench_suite --figure=ablation_mcf_variants,
// ablation_accuracy_fn,ablation_aam_strategy,ablation_dmax
// Run:  ./build/bench/bench_ablation [--reps=5] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv,
                             {"ablation_mcf_variants", "ablation_accuracy_fn",
                              "ablation_aam_strategy", "ablation_dmax"});
}
