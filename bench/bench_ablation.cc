// Ablation studies for the design choices DESIGN.md calls out:
//
//   1. MCF-LTC batch size (the paper's own Sec. V-B1 discussion attributes
//      MCF-LTC's occasional losses to batch size): batch_factor in
//      {0.25, 0.5, 1.0, 2.0, 4.0} x m.
//   2. MCF-LTC index tie-break on/off (equal-cost flow optima).
//   3. Accuracy function: paper sigmoid vs hard step vs flat (no distance).
//   4. dmax sensitivity: {10, 20, 30, 40, 50} grid units.
//
// Run:  ./build/bench/bench_ablation [--reps=5]

#include <cstdio>
#include <map>

#include "algo/mcf_ltc.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"
#include "sim/engine.h"
#include "sim/metrics.h"

namespace {

using ltc::Status;
using ltc::StrFormat;

ltc::gen::SyntheticConfig AblationBaseConfig() {
  // Smaller than the figure benches: ablations run many MCF variants.
  ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
  cfg.num_tasks = ltc::bench::ScaledCount(2000);
  cfg.num_workers = ltc::bench::ScaledCount(30000);
  return cfg;
}

/// Sweeps MCF-LTC options over fresh instances; prints latency/runtime.
Status McfVariantsAblation(const ltc::bench::BenchOptions& options) {
  struct Variant {
    std::string name;
    ltc::algo::McfLtcOptions mcf;
  };
  std::vector<Variant> variants;
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    ltc::algo::McfLtcOptions mcf_options;
    mcf_options.batch_factor = factor;
    variants.push_back({StrFormat("batch=%.2fm", factor), mcf_options});
  }
  {
    ltc::algo::McfLtcOptions no_tie;
    no_tie.index_tie_break = false;
    variants.push_back({"no-tie-break", no_tie});
    ltc::algo::McfLtcOptions no_early;
    no_early.early_exit = false;
    variants.push_back({"no-early-exit", no_early});
  }

  ltc::TablePrinter table({"variant", "latency", "runtime(s)", "batches",
                           "augmentations", "completed"});
  for (const auto& variant : variants) {
    double latency_sum = 0;
    double runtime_sum = 0;
    std::int64_t batches = 0;
    std::int64_t augmentations = 0;
    std::int64_t completed = 0;
    for (std::int64_t rep = 0; rep < options.reps; ++rep) {
      ltc::gen::SyntheticConfig cfg = AblationBaseConfig();
      cfg.seed = options.seed + static_cast<std::uint64_t>(rep) * 131;
      LTC_ASSIGN_OR_RETURN(auto instance, ltc::gen::GenerateSynthetic(cfg));
      LTC_ASSIGN_OR_RETURN(auto index,
                           ltc::model::EligibilityIndex::Build(&instance));
      ltc::algo::McfLtc mcf(variant.mcf);
      ltc::Stopwatch watch;
      LTC_ASSIGN_OR_RETURN(auto result, mcf.Run(instance, index));
      runtime_sum += watch.ElapsedSeconds();
      latency_sum += static_cast<double>(result.latency);
      batches += result.stats.mcf_batches;
      augmentations += result.stats.mcf_augmentations;
      if (result.completed) ++completed;
    }
    const double reps = static_cast<double>(options.reps);
    table.AddRow({variant.name, StrFormat("%.1f", latency_sum / reps),
                  StrFormat("%.4f", runtime_sum / reps),
                  StrFormat("%.1f", static_cast<double>(batches) / reps),
                  StrFormat("%.0f", static_cast<double>(augmentations) / reps),
                  StrFormat("%lld/%lld", static_cast<long long>(completed),
                            static_cast<long long>(options.reps))});
  }
  std::printf("\n-- ablation: MCF-LTC variants --\n%s", table.Render().c_str());
  return table.WriteCsv(options.out_dir + "/ablation_mcf_variants.csv");
}

/// Compares the three accuracy models on the full roster.
Status AccuracyFunctionAblation(const ltc::bench::BenchOptions& options) {
  std::vector<ltc::bench::BenchCase> cases;
  struct Model {
    std::string name;
    std::function<std::shared_ptr<ltc::model::AccuracyFunction>(double dmax)>
        make;
  };
  const std::vector<Model> models = {
      {"sigmoid(paper)",
       [](double dmax) {
         return std::make_shared<ltc::model::SigmoidDistanceAccuracy>(dmax);
       }},
      {"step",
       [](double dmax) {
         return std::make_shared<ltc::model::StepDistanceAccuracy>(dmax);
       }},
      {"flat",
       [](double) { return std::make_shared<ltc::model::FlatAccuracy>(); }},
  };
  for (const auto& m : models) {
    auto make = m.make;
    cases.push_back(ltc::bench::BenchCase{
        m.name, [make](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = AblationBaseConfig();
          cfg.seed = seed;
          auto instance = ltc::gen::GenerateSynthetic(cfg);
          if (!instance.ok()) return instance;
          instance.value().accuracy = make(cfg.dmax);
          return instance;
        }});
  }
  return ltc::bench::RunFigureBench("ablation_accuracy_fn", "model", cases,
                                    options);
}

/// AAM's switching rule vs its two pure halves (and LAF as the reference):
/// LGF-only never protects bottleneck tasks, LRF-only never economises
/// accurate workers; Algorithm 3's avg-vs-maxRemain switch hybridises them.
Status AamStrategyAblation(const ltc::bench::BenchOptions& options) {
  std::vector<ltc::bench::BenchCase> cases;
  for (double epsilon : {0.06, 0.14, 0.22}) {
    cases.push_back(ltc::bench::BenchCase{
        StrFormat("%.2f", epsilon), [epsilon](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = AblationBaseConfig();
          cfg.epsilon = epsilon;
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }
  return ltc::bench::RunFigureBenchWithAlgorithms(
      "ablation_aam_strategy", "eps", cases,
      {"LAF", "LGF-only", "LRF-only", "AAM"}, options);
}

/// dmax sensitivity on the full roster.
Status DmaxAblation(const ltc::bench::BenchOptions& options) {
  std::vector<ltc::bench::BenchCase> cases;
  for (double dmax : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    cases.push_back(ltc::bench::BenchCase{
        StrFormat("%.0f", dmax), [dmax](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = AblationBaseConfig();
          cfg.dmax = dmax;
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }
  return ltc::bench::RunFigureBench("ablation_dmax", "dmax", cases, options);
}

}  // namespace

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }
  for (const auto& status :
       {McfVariantsAblation(options.value()),
        AccuracyFunctionAblation(options.value()),
        AamStrategyAblation(options.value()),
        DmaxAblation(options.value())}) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
