// Extension experiment: aggregation-method comparison on completed LTC
// workloads — the paper's weighted majority voting (Definition 4) vs plain
// majority voting vs EM truth inference with *unknown* worker accuracies
// (the alternative its Sec. VI-A cites).
//
// Run:  ./build/bench/bench_truth [--reps=3]

#include <cstdio>

#include "algo/registry.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "gen/synthetic.h"
#include "model/eligibility.h"
#include "model/truth_inference.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  ltc::TablePrinter table({"eps", "majority", "weighted(paper)", "EM",
                           "EM iters"});
  for (double epsilon : {0.06, 0.10, 0.14, 0.18, 0.22}) {
    double majority_sum = 0;
    double weighted_sum = 0;
    double em_sum = 0;
    double em_iters = 0;
    for (std::int64_t rep = 0; rep < options->reps; ++rep) {
      ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
      cfg.num_tasks = ltc::bench::ScaledCount(1000);
      cfg.num_workers = ltc::bench::ScaledCount(20000);
      cfg.epsilon = epsilon;
      cfg.seed = options->seed + static_cast<std::uint64_t>(rep) * 613;
      auto instance = ltc::gen::GenerateSynthetic(cfg);
      instance.status().CheckOK();
      auto index = ltc::model::EligibilityIndex::Build(&instance.value());
      index.status().CheckOK();
      auto scheduler = ltc::algo::MakeOnlineScheduler("AAM", cfg.seed);
      scheduler.status().CheckOK();
      (*scheduler)->Init(*instance, *index).CheckOK();
      std::vector<ltc::model::TaskId> assigned;
      for (const auto& w : instance->workers) {
        if ((*scheduler)->Done()) break;
        (*scheduler)->OnArrival(w, &assigned).CheckOK();
      }
      auto answers = ltc::model::SimulateAnswers(
          *instance, (*scheduler)->arrangement(), cfg.seed + 7);
      answers.status().CheckOK();
      auto majority = ltc::model::MajorityVote(*instance, *answers);
      auto weighted = ltc::model::WeightedVote(*instance, *answers);
      auto em = ltc::model::EmTruthInference(*instance, *answers);
      majority.status().CheckOK();
      weighted.status().CheckOK();
      em.status().CheckOK();
      majority_sum += majority->error_rate;
      weighted_sum += weighted->error_rate;
      em_sum += em->error_rate;
      em_iters += static_cast<double>(em->iterations);
    }
    const double reps = static_cast<double>(options->reps);
    table.AddRow({ltc::StrFormat("%.2f", epsilon),
                  ltc::StrFormat("%.5f", majority_sum / reps),
                  ltc::StrFormat("%.5f", weighted_sum / reps),
                  ltc::StrFormat("%.5f", em_sum / reps),
                  ltc::StrFormat("%.1f", em_iters / reps)});
  }
  std::printf("\n-- truth inference: per-task error rate by aggregation "
              "method --\n%s",
              table.Render().c_str());
  const auto status = table.WriteCsv(options->out_dir + "/truth_methods.csv");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
