// Extension experiment: aggregation-method comparison on completed LTC
// workloads — the paper's weighted majority voting (Definition 4) vs plain
// majority voting vs EM truth inference with *unknown* worker accuracies
// (the alternative its Sec. VI-A cites).
//
// Thin wrapper: equivalent to  bench_suite --figure=truth
// Run:  ./build/bench/bench_truth [--reps=3] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"truth"});
}
