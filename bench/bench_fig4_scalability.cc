// Fig. 4b/4f/4j — scalability: latency / runtime / memory with |T| in
// {10K, 20K, 30K, 40K, 50K, 100K} and |W| = 400K (Table IV, last row).
//
// The default laptop scale divides the counts by 50 (a 1/10 scale of this
// sweep still reaches |T| = 10000 under MCF-LTC's flow solves, which is
// minutes of work; the paper itself reports MCF-LTC "becomes inefficient
// with very large numbers of tasks"). Pass --paper for the full factors, or
// --skip=MCF-LTC to sweep only the online algorithms at larger sizes.
//
// Run:  ./build/bench/bench_fig4_scalability [--paper] [--reps=30]

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  const double scale = ltc::bench::PaperScale() ? 1.0 : 0.02;
  std::vector<ltc::bench::BenchCase> cases;
  for (std::int64_t paper_tasks :
       {10000, 20000, 30000, 40000, 50000, 100000}) {
    const auto tasks = static_cast<std::int64_t>(
        std::llround(static_cast<double>(paper_tasks) * scale));
    const auto workers =
        static_cast<std::int64_t>(std::llround(400000.0 * scale));
    cases.push_back(ltc::bench::BenchCase{
        ltc::StrFormat("%lld", static_cast<long long>(paper_tasks)),
        [tasks, workers, scale](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg;  // Table IV bold values
          cfg.num_tasks = tasks;
          cfg.num_workers = workers;
          cfg.grid_side = 1000.0 * std::sqrt(scale);
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }

  const auto status = ltc::bench::RunFigureBench("fig4_scalability", "|T|",
                                                 cases, options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
