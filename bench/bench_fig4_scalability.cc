// Fig. 4b/4f/4j — scalability: latency / runtime / memory with |T| in
// {10K, 20K, 30K, 40K, 50K, 100K} and |W| = 400K (Table IV, last row).
//
// The default laptop scale divides the counts by 50 (a 1/10 scale of this
// sweep still reaches |T| = 10000 under MCF-LTC's flow solves, which is
// minutes of work). Pass --paper for the full factors, or --skip=MCF-LTC to
// sweep only the online algorithms at larger sizes.
//
// Thin wrapper: equivalent to  bench_suite --figure=fig4_scalability
// Run:  ./build/bench/bench_fig4_scalability [--paper] [--reps=30]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig4_scalability"});
}
