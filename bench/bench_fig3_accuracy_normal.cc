// Fig. 3c/3g/3k — latency / runtime / memory while varying the mean of the
// *normally* distributed historical accuracy, mu in {0.82..0.90}, sigma =
// 0.05 (Table IV).
//
// Thin wrapper: equivalent to  bench_suite --figure=fig3_accuracy_normal
// Run:  ./build/bench/bench_fig3_accuracy_normal [--paper] [--reps=30]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig3_accuracy_normal"});
}
