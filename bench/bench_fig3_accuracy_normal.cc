// Fig. 3c/3g/3k — latency / runtime / memory while varying the mean of the
// *normally* distributed historical accuracy, mu in {0.82..0.90}, sigma =
// 0.05 (Table IV).
//
// Run:  ./build/bench/bench_fig3_accuracy_normal [--paper] [--reps=30]

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  std::vector<ltc::bench::BenchCase> cases;
  for (double mu : {0.82, 0.84, 0.86, 0.88, 0.90}) {
    cases.push_back(ltc::bench::BenchCase{
        ltc::StrFormat("%.2f", mu), [mu](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
          cfg.distribution = ltc::gen::AccuracyDistribution::kNormal;
          cfg.accuracy_mean = mu;
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }

  const auto status = ltc::bench::RunFigureBench("fig3_accuracy_normal", "mu",
                                                 cases, options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
