#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "algo/registry.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "model/eligibility.h"
#include "sim/engine.h"
#include "sim/metrics.h"

namespace ltc {
namespace bench {

namespace {

Flag<bool> FLAG_paper("paper",
                      false,
                      "run the paper's full Table IV/V factors (slow)");
Flag<std::int64_t> FLAG_reps("reps", 3, "repetitions per point (paper: 30)");
Flag<std::int64_t> FLAG_seed("seed", 1, "base RNG seed");
Flag<std::string> FLAG_out_dir("out_dir", "results", "CSV output directory");
Flag<std::string> FLAG_skip("skip", "",
                            "comma-separated algorithm names to skip");
Flag<std::string> FLAG_cases("cases", "",
                             "comma-separated case labels to run (all when "
                             "empty)");
Flag<std::string> FLAG_json("json", "",
                            "write a machine-readable JSON summary here");

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

bool PaperScale() { return FLAG_paper.Get(); }

double ScaleFactor() { return PaperScale() ? 1.0 : 0.1; }

gen::SyntheticConfig BaseSyntheticConfig() {
  gen::SyntheticConfig cfg;  // Table IV bold defaults at paper scale
  const double s = ScaleFactor();
  cfg.num_tasks = ScaledCount(cfg.num_tasks);
  cfg.num_workers = ScaledCount(cfg.num_workers);
  cfg.grid_side *= std::sqrt(s);
  return cfg;
}

std::int64_t ScaledCount(std::int64_t paper_value) {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(static_cast<double>(paper_value) * ScaleFactor())));
}

StatusOr<BenchOptions> ParseBenchFlags(int argc, char** argv) {
  LTC_RETURN_IF_ERROR(ParseCommandLine(argc, argv));
  BenchOptions options;
  options.reps = FLAG_reps.Get();
  options.seed = static_cast<std::uint64_t>(FLAG_seed.Get());
  options.out_dir = FLAG_out_dir.Get();
  options.paper_scale = FLAG_paper.Get();
  if (!FLAG_skip.Get().empty()) {
    for (auto& name : Split(FLAG_skip.Get(), ',')) {
      options.skip.push_back(Trim(name));
    }
  }
  if (!FLAG_cases.Get().empty()) {
    for (auto& label : Split(FLAG_cases.Get(), ',')) {
      options.case_filter.push_back(Trim(label));
    }
  }
  options.json_path = FLAG_json.Get();
  if (options.reps <= 0) {
    return Status::InvalidArgument("--reps must be positive");
  }
  return options;
}

Status RunFigureBench(const std::string& figure, const std::string& factor,
                      const std::vector<BenchCase>& cases,
                      const BenchOptions& options) {
  return RunFigureBenchWithAlgorithms(figure, factor, cases,
                                      algo::StandardAlgorithms(), options);
}

Status RunFigureBenchWithAlgorithms(const std::string& figure,
                                    const std::string& factor,
                                    const std::vector<BenchCase>& cases,
                                    const std::vector<std::string>& algorithms,
                                    const BenchOptions& options) {
  std::vector<std::string> roster;
  for (const auto& name : algorithms) {
    bool skipped = false;
    for (const auto& skip : options.skip) skipped |= (skip == name);
    if (!skipped) roster.push_back(name);
  }
  if (roster.empty()) {
    return Status::InvalidArgument("all algorithms skipped");
  }
  std::vector<BenchCase> selected;
  for (const auto& bench_case : cases) {
    bool keep = options.case_filter.empty();
    for (const auto& label : options.case_filter) {
      keep |= (label == bench_case.label);
    }
    if (keep) selected.push_back(bench_case);
  }
  if (selected.empty()) {
    return Status::InvalidArgument("--cases matched no case label");
  }

  std::vector<std::string> header = {factor};
  header.insert(header.end(), roster.begin(), roster.end());
  TablePrinter latency_table(header);
  TablePrinter runtime_table(header);
  TablePrinter memory_table(header);
  TablePrinter completion_table(header);

  std::printf("== %s: %lld rep(s) per point, scale=%s ==\n", figure.c_str(),
              static_cast<long long>(options.reps),
              options.paper_scale ? "paper" : "1/10");
  Stopwatch total_watch;
  // paper_scale is the only scale fact the harness knows reliably: each
  // bench binary picks its own sub-paper factor (e.g. fig4_scalability uses
  // 1/50 where most figures use 1/10), so a fraction here would lie.
  std::string json = StrFormat(
      "{\n  \"figure\": \"%s\",\n  \"factor\": \"%s\",\n"
      "  \"paper_scale\": %s,\n  \"reps\": %lld,\n  \"seed\": %llu,\n"
      "  \"cases\": [\n",
      JsonEscape(figure).c_str(), JsonEscape(factor).c_str(),
      options.paper_scale ? "true" : "false",
      static_cast<long long>(options.reps),
      static_cast<unsigned long long>(options.seed));
  bool first_case = true;
  for (const auto& bench_case : selected) {
    std::map<std::string, sim::AggregateMetrics> agg;
    for (std::int64_t rep = 0; rep < options.reps; ++rep) {
      const std::uint64_t seed =
          options.seed + static_cast<std::uint64_t>(rep) * 7919;
      LTC_ASSIGN_OR_RETURN(model::ProblemInstance instance,
                           bench_case.make(seed));
      LTC_ASSIGN_OR_RETURN(model::EligibilityIndex index,
                           model::EligibilityIndex::Build(&instance));
      for (const auto& name : roster) {
        sim::EngineOptions engine_options;
        engine_options.seed = seed;
        LTC_ASSIGN_OR_RETURN(
            sim::RunMetrics metrics,
            sim::RunAlgorithm(name, instance, index, engine_options));
        agg[name].Accumulate(metrics);
      }
    }
    std::vector<std::string> latency_row = {bench_case.label};
    std::vector<std::string> runtime_row = {bench_case.label};
    std::vector<std::string> memory_row = {bench_case.label};
    std::vector<std::string> completion_row = {bench_case.label};
    json += StrFormat("%s    {\"label\": \"%s\", \"algorithms\": [\n",
                      first_case ? "" : ",\n",
                      JsonEscape(bench_case.label).c_str());
    first_case = false;
    bool first_algo = true;
    for (const auto& name : roster) {
      auto& a = agg[name];
      a.Finalize();
      latency_row.push_back(StrFormat("%.1f", a.mean_latency));
      runtime_row.push_back(StrFormat("%.4f", a.mean_runtime_seconds));
      memory_row.push_back(
          StrFormat("%.2f", a.mean_peak_memory_bytes / (1024.0 * 1024.0)));
      completion_row.push_back(
          StrFormat("%lld/%lld", static_cast<long long>(a.completed_runs),
                    static_cast<long long>(a.runs)));
      json += StrFormat(
          "%s      {\"name\": \"%s\", \"mean_latency\": %.3f, "
          "\"mean_runtime_seconds\": %.6f, \"mean_peak_memory_mib\": %.3f, "
          "\"completed_runs\": %lld, \"runs\": %lld}",
          first_algo ? "" : ",\n", JsonEscape(name).c_str(), a.mean_latency,
          a.mean_runtime_seconds,
          a.mean_peak_memory_bytes / (1024.0 * 1024.0),
          static_cast<long long>(a.completed_runs),
          static_cast<long long>(a.runs));
      first_algo = false;
    }
    json += "\n    ]}";
    latency_table.AddRow(latency_row);
    runtime_table.AddRow(runtime_row);
    memory_table.AddRow(memory_row);
    completion_table.AddRow(completion_row);
    std::printf("  %s = %s done (%.1fs elapsed)\n", factor.c_str(),
                bench_case.label.c_str(), total_watch.ElapsedSeconds());
  }

  std::printf("\n-- %s: latency (mean max worker index) --\n%s", figure.c_str(),
              latency_table.Render().c_str());
  std::printf("\n-- %s: runtime (mean seconds) --\n%s", figure.c_str(),
              runtime_table.Render().c_str());
  std::printf("\n-- %s: peak memory (mean MiB) --\n%s", figure.c_str(),
              memory_table.Render().c_str());
  std::printf("\n-- %s: completed runs --\n%s\n", figure.c_str(),
              completion_table.Render().c_str());

  LTC_RETURN_IF_ERROR(
      latency_table.WriteCsv(options.out_dir + "/" + figure + "_latency.csv"));
  LTC_RETURN_IF_ERROR(
      runtime_table.WriteCsv(options.out_dir + "/" + figure + "_runtime.csv"));
  LTC_RETURN_IF_ERROR(
      memory_table.WriteCsv(options.out_dir + "/" + figure + "_memory.csv"));
  if (!options.json_path.empty()) {
    json += "\n  ]\n}\n";
    LTC_RETURN_IF_ERROR(WriteTextFile(options.json_path, json));
    std::printf("JSON summary written to %s\n", options.json_path.c_str());
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace ltc
