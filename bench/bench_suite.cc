// The one experiment driver: runs any paper figure, ablation, or extension
// suite — or all of them — through the exp::SweepRunner thread pool.
//
//   ./build/bench/bench_suite --list
//   ./build/bench/bench_suite --figure=fig4_scalability --threads=8
//       --reps=3 --json=results/fig4_scalability.json    (one figure)
//   ./build/bench/bench_suite --figure=all --paper --reps=30 --threads=0
//
// Schedule-dependent outputs (latency, completion, solver stats, their
// means) are bit-identical for every --threads value; only the measured
// runtime/memory fields move. The per-figure bench_* binaries are thin
// wrappers over this driver with a fixed --figure.

#include "exp/suite_main.h"

int main(int argc, char** argv) { return ltc::exp::SuiteMain(argc, argv); }
