// Fig. 3d/3h/3l — latency / runtime / memory while varying the mean of the
// *uniformly* distributed historical accuracy in {0.82..0.90} (Table IV).
//
// Run:  ./build/bench/bench_fig3_accuracy_uniform [--paper] [--reps=30]

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  std::vector<ltc::bench::BenchCase> cases;
  for (double mean : {0.82, 0.84, 0.86, 0.88, 0.90}) {
    cases.push_back(ltc::bench::BenchCase{
        ltc::StrFormat("%.2f", mean), [mean](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
          cfg.distribution = ltc::gen::AccuracyDistribution::kUniform;
          cfg.accuracy_mean = mean;
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }

  const auto status = ltc::bench::RunFigureBench("fig3_accuracy_uniform",
                                                 "mean", cases,
                                                 options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
