// Fig. 3d/3h/3l — latency / runtime / memory while varying the mean of the
// *uniformly* distributed historical accuracy in {0.82..0.90} (Table IV).
//
// Thin wrapper: equivalent to  bench_suite --figure=fig3_accuracy_uniform
// Run:  ./build/bench/bench_fig3_accuracy_uniform [--paper] [--reps=30]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig3_accuracy_uniform"});
}
