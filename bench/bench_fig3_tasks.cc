// Fig. 3a/3e/3i — latency / runtime / memory of all five algorithms while
// varying the task cardinality |T| in {1000..5000} (|W| = 40000, K = 6,
// eps = 0.1, accuracy ~ N(0.86, 0.05); Table IV).
//
// Run:  ./build/bench/bench_fig3_tasks [--paper] [--reps=30]

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  auto options = ltc::bench::ParseBenchFlags(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return options.status().IsFailedPrecondition() ? 0 : 1;
  }

  std::vector<ltc::bench::BenchCase> cases;
  for (std::int64_t paper_tasks : {1000, 2000, 3000, 4000, 5000}) {
    const std::int64_t tasks = ltc::bench::ScaledCount(paper_tasks);
    cases.push_back(ltc::bench::BenchCase{
        ltc::StrFormat("%lld", static_cast<long long>(paper_tasks)),
        [tasks](std::uint64_t seed) {
          ltc::gen::SyntheticConfig cfg = ltc::bench::BaseSyntheticConfig();
          cfg.num_tasks = tasks;
          cfg.seed = seed;
          return ltc::gen::GenerateSynthetic(cfg);
        }});
  }

  const auto status = ltc::bench::RunFigureBench("fig3_tasks", "|T|", cases,
                                                 options.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
