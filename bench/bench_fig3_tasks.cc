// Fig. 3a/3e/3i — latency / runtime / memory of all five algorithms while
// varying the task cardinality |T| in {1000..5000} (|W| = 40000, K = 6,
// eps = 0.1, accuracy ~ N(0.86, 0.05); Table IV).
//
// Thin wrapper: equivalent to  bench_suite --figure=fig3_tasks
// Run:  ./build/bench/bench_fig3_tasks [--paper] [--reps=30] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig3_tasks"});
}
