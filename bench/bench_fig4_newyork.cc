// Fig. 4c/4g/4k — latency / runtime / memory on the (simulated) Foursquare
// New York dataset while varying eps in {0.06..0.22} (Table V: |T| = 3717,
// |W| = 227428, K = 6, accuracy ~ N(0.86, 0.05)).
//
// Thin wrapper: equivalent to  bench_suite --figure=fig4_newyork
// Run:  ./build/bench/bench_fig4_newyork [--paper] [--reps=30] [--threads=N]

#include "exp/suite_main.h"

int main(int argc, char** argv) {
  return ltc::exp::SuiteMain(argc, argv, {"fig4_newyork"});
}
