// Streaming-service benchmark: sustained events/sec and assignment-latency
// percentiles of svc::StreamEngine over synthetic Poisson arrival streams,
// per scale point and online algorithm.
//
//   ./build/bench/bench_stream_throughput --reps=3 --threads=4
//       --shards=1,4 --json=stream.json
//
// The JSON summary uses the bench_compare-compatible shape (figure /
// cases / algorithms), with the stream-specific metrics alongside the
// standard ones:
//   events_per_sec            — wall-clock throughput (machine-dependent;
//                               CI gates it with a wide tolerance)
//   mean_assignment_latency,
//   p95_/p99_assignment_latency — stream-time latency distribution
//                               (schedule-deterministic: bit-identical for
//                               any --threads, tightly gated)
// --shards runs every requested spatial shard count as its own case
// ("10k@s1", "10k@s4", ...), which is how CI tracks the shard-scaling axis.
// The checked-in baseline is BENCH_PR5.json; tools/bench_compare.py gates
// CI's bench-smoke job against it.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exp/sweep.h"
#include "gen/road.h"
#include "gen/stream.h"
#include "geo/road_graph.h"
#include "io/workload_io.h"
#include "model/accuracy.h"
#include "svc/stream_engine.h"

namespace ltc {
namespace {

Flag<std::int64_t> FLAG_reps("reps", 3, "repetitions per point");
Flag<std::int64_t> FLAG_seed("seed", 1, "base RNG seed");
Flag<std::int64_t> FLAG_threads(
    "threads", 1,
    "candidate-gathering threads (0 = hardware concurrency); latency "
    "outputs are identical for every value");
Flag<std::string> FLAG_deadline(
    "deadline", "0.5",
    "batching deadline, or 'adaptive' for the forecast-driven policy "
    "(capped at --deadline_cap; the JSON figure becomes "
    "stream_throughput_adaptive so adaptive baselines gate separately)");
Flag<double> FLAG_deadline_cap(
    "deadline_cap", 0.5,
    "--deadline=adaptive: hard cap on how long a batch may stay open");
Flag<std::string> FLAG_shards("shards", "1",
                              "comma-separated spatial shard counts to run "
                              "(e.g. 1,4); every count becomes its own "
                              "'<scale>@sK' case");
Flag<std::string> FLAG_json("json", "",
                            "write the machine-readable JSON summary here");
Flag<std::string> FLAG_cases("cases", "",
                             "comma-separated scale labels to run (all when "
                             "empty)");
Flag<std::string> FLAG_metric(
    "metric", "euclid",
    "distance backend: 'euclid' (classic) or 'road' (rebinds the accuracy "
    "model onto a RoadMetric over a synthesized street grid; the JSON "
    "figure becomes stream_throughput_road so road baselines gate "
    "separately)");

struct StreamCase {
  std::string label;
  std::int64_t num_tasks;
  std::int64_t num_workers;
};

/// Aggregates one (case, algorithm) cell over its repetitions.
struct CellResult {
  std::string name;
  double events_per_sec = 0.0;
  double mean_latency = 0.0;  // mean max worker index, as in every suite
  double mean_assignment_latency = 0.0;
  double p95_assignment_latency = 0.0;
  double p99_assignment_latency = 0.0;
  double mean_runtime_seconds = 0.0;
  std::int64_t completed_runs = 0;
  std::int64_t runs = 0;
};

StatusOr<CellResult> RunCell(const StreamCase& scale, std::int64_t shards,
                             const std::string& algorithm,
                             const std::shared_ptr<const geo::Metric>& metric,
                             svc::DeadlinePolicy deadline_policy,
                             double batch_deadline) {
  CellResult cell;
  cell.name = algorithm;
  const std::int64_t reps = FLAG_reps.Get();
  double events = 0.0;
  double seconds = 0.0;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    gen::StreamConfig cfg;
    cfg.num_tasks = scale.num_tasks;
    cfg.num_workers = scale.num_workers;
    cfg.seed = exp::RepSeed(static_cast<std::uint64_t>(FLAG_seed.Get()), rep);
    LTC_ASSIGN_OR_RETURN(io::EventLog log, gen::GenerateStreamEvents(cfg));
    if (metric != nullptr) {
      LTC_ASSIGN_OR_RETURN(log.accuracy,
                           model::RebindMetric(*log.accuracy, metric));
    }

    svc::StreamOptions options;
    options.algorithm = algorithm;
    options.deadline_policy = deadline_policy;
    options.batch_deadline = batch_deadline;
    options.seed = cfg.seed;
    options.threads = static_cast<int>(FLAG_threads.Get());
    options.shards = static_cast<int>(shards);
    // Measure the serving path only: post-stream ValidateArrangement is
    // O(assignments) bookkeeping inside ReplayEventLog's timed window and
    // would pollute events/sec (tests cover validity; benches measure).
    options.validate = false;
    LTC_ASSIGN_OR_RETURN(svc::ReplayResult replay,
                         svc::ReplayEventLog(log, options));

    events += static_cast<double>(replay.stream.events);
    seconds += replay.run.runtime_seconds;
    cell.mean_latency += static_cast<double>(replay.run.latency);
    cell.mean_assignment_latency += replay.stream.assignment_latency.mean;
    cell.p95_assignment_latency += replay.stream.assignment_latency.p95;
    cell.p99_assignment_latency += replay.stream.assignment_latency.p99;
    if (replay.stream.open_tasks == 0) ++cell.completed_runs;
    ++cell.runs;
  }
  const double n = static_cast<double>(reps);
  cell.events_per_sec = seconds > 0.0 ? events / seconds : 0.0;
  cell.mean_latency /= n;
  cell.mean_assignment_latency /= n;
  cell.p95_assignment_latency /= n;
  cell.p99_assignment_latency /= n;
  cell.mean_runtime_seconds = seconds / n;
  return cell;
}

int Main(int argc, char** argv) {
  const Status parsed = ParseCommandLine(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.IsFailedPrecondition() ? 0 : 1;
  }

  const std::vector<StreamCase> all_cases = {
      {"10k", 250, 10000},
      {"40k", 1000, 40000},
  };
  // "MCF" (the streaming MCF-LTC batch scheduler, PR 6) extends the online
  // roster; bench_compare gates only cells shared with a baseline, so older
  // baselines without MCF cells still gate cleanly.
  const std::vector<std::string> algorithms = {"Random", "LAF", "AAM", "MCF"};

  std::vector<StreamCase> cases;
  if (FLAG_cases.Get().empty()) {
    cases = all_cases;
  } else {
    for (const std::string& part : Split(FLAG_cases.Get(), ',')) {
      const std::string label = Trim(part);
      bool found = false;
      for (const StreamCase& c : all_cases) {
        if (c.label == label) {
          cases.push_back(c);
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown case label '%s'\n", label.c_str());
        return 1;
      }
    }
  }

  // --metric=road: one street grid shared by every cell, matching the
  // stream generator's world side. Travel time >= Euclidean distance, so
  // eligibility shrinks and the per-gather Dijkstra cost shows up in
  // events/sec — which is exactly what BENCH_PR8.json gates.
  std::shared_ptr<const geo::Metric> metric;
  if (FLAG_metric.Get() == "road") {
    gen::RoadConfig road;
    // Dense enough that snap legs (≈ half the ~10.5-unit spacing) stay
    // small against dmax = 30; at the default 32x32 the spacing alone
    // exceeds the accuracy range and eligibility collapses.
    road.rows = 96;
    road.cols = 96;
    auto built = gen::GenerateGridRoadGraph(road);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    metric = std::make_shared<geo::RoadMetric>(
        std::make_shared<geo::RoadGraph>(std::move(built).value()));
  } else if (FLAG_metric.Get() != "euclid") {
    std::fprintf(stderr, "unknown --metric '%s' (euclid|road)\n",
                 FLAG_metric.Get().c_str());
    return 1;
  }

  svc::DeadlinePolicy deadline_policy = svc::DeadlinePolicy::kFixed;
  double batch_deadline = 0.0;
  if (FLAG_deadline.Get() == "adaptive") {
    deadline_policy = svc::DeadlinePolicy::kAdaptive;
    batch_deadline = FLAG_deadline_cap.Get();
  } else if (!ParseDouble(FLAG_deadline.Get(), &batch_deadline)) {
    std::fprintf(stderr, "bad --deadline '%s' (number or 'adaptive')\n",
                 FLAG_deadline.Get().c_str());
    return 1;
  }

  std::vector<std::int64_t> shard_counts;
  for (const std::string& part : Split(FLAG_shards.Get(), ',')) {
    std::int64_t k = 0;
    if (!ParseInt64(Trim(part), &k) || k < 1) {
      std::fprintf(stderr, "bad --shards entry '%s'\n", part.c_str());
      return 1;
    }
    shard_counts.push_back(k);
  }

  Stopwatch total;
  std::string figure = metric != nullptr ? "stream_throughput_road"
                                         : "stream_throughput";
  if (deadline_policy == svc::DeadlinePolicy::kAdaptive) {
    figure += "_adaptive";
  }
  std::string json = StrFormat(
      "{\n  \"figure\": \"%s\",\n  \"factor\": \"events\",\n"
      "  \"paper_scale\": false,\n  \"reps\": %lld,\n  \"seed\": %lld,\n"
      "  \"cases\": [\n",
      figure.c_str(), static_cast<long long>(FLAG_reps.Get()),
      static_cast<long long>(FLAG_seed.Get()));
  struct CasePoint {
    StreamCase scale;
    std::int64_t shards;
  };
  std::vector<CasePoint> points;
  for (const StreamCase& scale : cases) {
    for (const std::int64_t shards : shard_counts) {
      points.push_back(CasePoint{scale, shards});
    }
  }

  bool first_case = true;
  for (const CasePoint& point : points) {
    const StreamCase& scale = point.scale;
    const std::int64_t shards = point.shards;
    const std::string label =
        StrFormat("%s@s%lld", scale.label.c_str(),
                  static_cast<long long>(shards));
    std::printf("-- stream %s: |T|=%lld |W|=%lld deadline=%s shards=%lld --\n",
                scale.label.c_str(), static_cast<long long>(scale.num_tasks),
                static_cast<long long>(scale.num_workers),
                FLAG_deadline.Get().c_str(), static_cast<long long>(shards));
    json += StrFormat("%s    {\"label\": \"%s\", \"algorithms\": [\n",
                      first_case ? "" : ",\n", label.c_str());
    first_case = false;
    bool first_algo = true;
    for (const std::string& algorithm : algorithms) {
      auto cell = RunCell(scale, shards, algorithm, metric, deadline_policy,
                          batch_deadline);
      if (!cell.ok()) {
        std::fprintf(stderr, "%s\n", cell.status().ToString().c_str());
        return 1;
      }
      const CellResult& r = cell.value();
      std::printf(
          "%-8s %10.0f events/s  assignment latency mean %.3f p95 %.3f "
          "p99 %.3f  (%lld/%lld complete)\n",
          r.name.c_str(), r.events_per_sec, r.mean_assignment_latency,
          r.p95_assignment_latency, r.p99_assignment_latency,
          static_cast<long long>(r.completed_runs),
          static_cast<long long>(r.runs));
      json += StrFormat(
          "%s      {\"name\": \"%s\", \"mean_latency\": %.3f, "
          "\"events_per_sec\": %.1f, \"mean_assignment_latency\": %.6f, "
          "\"p95_assignment_latency\": %.6f, "
          "\"p99_assignment_latency\": %.6f, "
          "\"mean_runtime_seconds\": %.6f, \"completed_runs\": %lld, "
          "\"runs\": %lld}",
          first_algo ? "" : ",\n", r.name.c_str(), r.mean_latency,
          r.events_per_sec, r.mean_assignment_latency,
          r.p95_assignment_latency, r.p99_assignment_latency,
          r.mean_runtime_seconds, static_cast<long long>(r.completed_runs),
          static_cast<long long>(r.runs));
      first_algo = false;
    }
    json += "\n    ]}";
  }
  json += "\n  ]\n}\n";

  if (!FLAG_json.Get().empty()) {
    const Status written = io::WriteFile(FLAG_json.Get(), json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("JSON summary written to %s\n", FLAG_json.Get().c_str());
  }
  std::printf("total: %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace ltc

int main(int argc, char** argv) { return ltc::Main(argc, argv); }
