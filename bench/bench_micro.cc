// google-benchmark micro suite for the performance-critical substrates:
// the min-cost-flow solver, the spatial indexes, eligibility queries, and a
// single online-arrival step of LAF/AAM.
//
// Run:  ./build/bench/bench_micro [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "algo/aam.h"
#include "algo/laf.h"
#include "common/random.h"
#include "flow/graph.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"
#include "gen/synthetic.h"
#include "geo/grid_index.h"
#include "geo/kdtree.h"
#include "model/eligibility.h"

namespace {

using ltc::Rng;

/// Builds an LTC-shaped bipartite flow network: st -> W workers -> T tasks
/// -> ed, with ~degree random eligible arcs per worker.
ltc::flow::FlowNetwork BuildBipartite(int workers, int tasks, int degree,
                                      std::uint64_t seed) {
  Rng rng(seed);
  ltc::flow::FlowNetworkBuilder b(
      static_cast<ltc::flow::NodeId>(2 + workers + tasks));
  for (int w = 0; w < workers; ++w) {
    b.AddArc(0, static_cast<ltc::flow::NodeId>(2 + w), 6, 0)
        .status()
        .CheckOK();
    for (int d = 0; d < degree; ++d) {
      const auto t = static_cast<int>(rng.UniformInt(0, tasks - 1));
      b.AddArc(static_cast<ltc::flow::NodeId>(2 + w),
               static_cast<ltc::flow::NodeId>(2 + workers + t), 1,
               -rng.UniformInt(100000, 1000000))
          .status()
          .CheckOK();
    }
  }
  for (int t = 0; t < tasks; ++t) {
    b.AddArc(static_cast<ltc::flow::NodeId>(2 + workers + t), 1, 5, 0)
        .status()
        .CheckOK();
  }
  ltc::flow::FlowNetwork net;
  b.Build(&net);
  return net;
}

void BM_SspMinCostMaxFlow(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int tasks = workers / 2;
  for (auto _ : state) {
    state.PauseTiming();
    auto net = BuildBipartite(workers, tasks, 8, 42);
    state.ResumeTiming();
    auto result = ltc::flow::SspMinCostMaxFlow(&net, 0, 1);
    result.status().CheckOK();
    benchmark::DoNotOptimize(result->cost);
  }
}
BENCHMARK(BM_SspMinCostMaxFlow)->Arg(64)->Arg(256)->Arg(1024);

void BM_DinicMaxFlow(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto net = BuildBipartite(workers, workers / 2, 8, 42);
    state.ResumeTiming();
    auto result = ltc::flow::DinicMaxFlow(&net, 0, 1);
    result.status().CheckOK();
    benchmark::DoNotOptimize(result.value());
  }
}
BENCHMARK(BM_DinicMaxFlow)->Arg(256)->Arg(1024);

std::vector<ltc::geo::Point> RandomPoints(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ltc::geo::Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  return points;
}

void BM_GridIndexBuild(benchmark::State& state) {
  const auto points = RandomPoints(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto index = ltc::geo::GridIndex::Build(points, 30.0);
    index.status().CheckOK();
    benchmark::DoNotOptimize(index->size());
  }
}
BENCHMARK(BM_GridIndexBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GridIndexQueryRadius(benchmark::State& state) {
  const auto points = RandomPoints(static_cast<int>(state.range(0)), 7);
  auto index = ltc::geo::GridIndex::Build(points, 30.0);
  index.status().CheckOK();
  Rng rng(13);
  std::vector<std::int64_t> out;
  for (auto _ : state) {
    index->QueryRadius({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 30.0,
                       &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridIndexQueryRadius)->Arg(10000)->Arg(100000);

void BM_KdTreeQueryRadius(benchmark::State& state) {
  const auto points = RandomPoints(static_cast<int>(state.range(0)), 7);
  ltc::geo::KdTree tree(points);
  Rng rng(13);
  std::vector<std::int64_t> out;
  for (auto _ : state) {
    tree.QueryRadius({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 30.0, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_KdTreeQueryRadius)->Arg(10000)->Arg(100000);

struct OnlineFixture {
  ltc::model::ProblemInstance instance;
  std::unique_ptr<ltc::model::EligibilityIndex> index;

  static OnlineFixture Make(std::int64_t tasks, std::int64_t workers) {
    ltc::gen::SyntheticConfig cfg;
    cfg.num_tasks = tasks;
    cfg.num_workers = workers;
    cfg.grid_side = 316.0;
    cfg.seed = 21;
    auto instance = ltc::gen::GenerateSynthetic(cfg);
    instance.status().CheckOK();
    OnlineFixture f{std::move(instance).value(), nullptr};
    auto index = ltc::model::EligibilityIndex::Build(&f.instance);
    index.status().CheckOK();
    f.index = std::make_unique<ltc::model::EligibilityIndex>(
        std::move(index).value());
    return f;
  }
};

template <typename Scheduler>
void RunOnlinePass(benchmark::State& state, std::int64_t tasks) {
  OnlineFixture f = OnlineFixture::Make(tasks, 4000);
  std::vector<ltc::model::TaskId> assigned;
  for (auto _ : state) {
    Scheduler scheduler;
    scheduler.Init(f.instance, *f.index).CheckOK();
    std::int64_t arrivals = 0;
    for (const auto& w : f.instance.workers) {
      if (scheduler.Done()) break;
      scheduler.OnArrival(w, &assigned).CheckOK();
      ++arrivals;
    }
    benchmark::DoNotOptimize(arrivals);
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}

void BM_LafFullStream(benchmark::State& state) {
  RunOnlinePass<ltc::algo::Laf>(state, state.range(0));
}
BENCHMARK(BM_LafFullStream)->Arg(100)->Arg(400);

void BM_AamFullStream(benchmark::State& state) {
  RunOnlinePass<ltc::algo::Aam>(state, state.range(0));
}
BENCHMARK(BM_AamFullStream)->Arg(100)->Arg(400);

void BM_EligibilityQuery(benchmark::State& state) {
  OnlineFixture f = OnlineFixture::Make(state.range(0), 4000);
  std::vector<ltc::model::TaskId> out;
  std::size_t cursor = 0;
  for (auto _ : state) {
    const auto& w = f.instance.workers[cursor];
    f.index->EligibleTasks(w, &out);
    benchmark::DoNotOptimize(out.size());
    cursor = (cursor + 1) % f.instance.workers.size();
  }
}
BENCHMARK(BM_EligibilityQuery)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
